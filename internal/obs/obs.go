// Package obs is the stdlib-only observability layer of the serving stack:
// lock-free latency histograms, per-operation throughput/error statistics,
// an expvar-based /metrics handler, and a bridge that prices live
// hdc.AtomicCounter operation counts on the internal/hwmodel hardware
// profiles so a running server reports energy/latency estimates for the
// traffic it actually served — the runtime counterpart of the paper's
// measured-cost evaluation (Table 1, Figs. 7–9).
//
// Everything here is safe for concurrent use: recording paths are a handful
// of atomic adds (no locks, no allocation), so instrumentation can stay on
// while any number of goroutines serve predictions. Readers (Summary,
// Quantile, Report) observe per-field-consistent snapshots.
//
// The package is consumed three ways:
//
//   - reghd.Engine records into OpStats/StageTimes and exposes the result
//     as the plain struct reghd.EngineMetrics (Engine.Metrics()).
//   - Publish/Handler export any metrics producer as expvar JSON; mount
//     Handler at /metrics (cmd/reghd-serve does).
//   - HWBridge turns the op counts of live serving into hardware cost
//     estimates (internal/hwmodel) published alongside the latency metrics.
//
// docs/OBSERVABILITY.md documents every exported metric; the
// TestMetricsDocumented lint (make metrics-lint) keeps code and docs in
// sync.
package obs
