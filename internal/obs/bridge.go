package obs

import (
	"fmt"

	"reghd/internal/hdc"
	"reghd/internal/hwmodel"
)

// HWBridge feeds live operation counts into the analytical hardware cost
// model: the same hdc.AtomicCounter an Engine or Snapshot accumulates
// during concurrent serving is priced, on demand, on one or more hwmodel
// profiles. Where the `fig8`/`fig9` experiments estimate cost for analytic
// workloads, the bridge estimates it for the traffic actually served — how
// long the queries handled so far would have taken, and what they would
// have cost in energy, on the modeled FPGA or ARM target.
//
// The bridge holds no state of its own; Report reads the counter at call
// time, so it is safe to call concurrently with serving.
type HWBridge struct {
	counter  *hdc.AtomicCounter
	profiles []hwmodel.Profile
	queries  func() uint64
}

// NewHWBridge builds a bridge over the given live counter and hardware
// profiles. Profiles are validated on construction so Report cannot fail on
// a malformed profile later.
func NewHWBridge(ctr *hdc.AtomicCounter, profiles ...hwmodel.Profile) (*HWBridge, error) {
	if ctr == nil {
		return nil, fmt.Errorf("obs: nil op counter")
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("obs: no hardware profiles")
	}
	for i := range profiles {
		if err := profiles[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &HWBridge{counter: ctr, profiles: profiles}, nil
}

// SetQueries installs a query-count source (e.g. the engine's served
// prediction count) so Report can amortize cost per query. Optional; without
// it the per-query fields stay zero.
func (b *HWBridge) SetQueries(f func() uint64) { b.queries = f }

// HWEstimate is the modeled cost of the served traffic on one profile.
type HWEstimate struct {
	// ModelSeconds is the estimated runtime of the served operation mix on
	// this hardware target (not the wall time the Go process spent).
	ModelSeconds float64 `json:"model_seconds"`
	// ModelJoules is the estimated total energy, dynamic plus static.
	ModelJoules float64 `json:"model_joules"`
	// USPerQuery and UJPerQuery amortize the estimates over the served
	// query count (microseconds / microjoules per prediction); zero when no
	// query source is installed or no queries were served.
	USPerQuery float64 `json:"us_per_query"`
	UJPerQuery float64 `json:"uj_per_query"`
}

// HWReport is the JSON-ready live hardware view: the raw operation counts
// accumulated by serving, and their modeled cost on every profile.
type HWReport struct {
	// Ops maps operation-class names (hdc.Op.String) to live counts.
	Ops map[string]uint64 `json:"ops"`
	// TotalOps is the sum over all classes.
	TotalOps uint64 `json:"total_ops"`
	// Queries is the served query count (0 without a query source).
	Queries uint64 `json:"queries"`
	// Estimates maps profile names to modeled costs.
	Estimates map[string]HWEstimate `json:"estimates"`
}

// Report prices the counter's current counts on every profile.
func (b *HWBridge) Report() (HWReport, error) {
	counts := b.counter.Snapshot()
	r := HWReport{
		Ops:       make(map[string]uint64, hdc.NumOps),
		Estimates: make(map[string]HWEstimate, len(b.profiles)),
	}
	for op, n := range counts {
		if n != 0 {
			r.Ops[hdc.Op(op).String()] = n
		}
		r.TotalOps += n
	}
	if b.queries != nil {
		r.Queries = b.queries()
	}
	for _, p := range b.profiles {
		cost, err := hwmodel.Estimate(counts, p)
		if err != nil {
			return HWReport{}, err
		}
		est := HWEstimate{ModelSeconds: cost.Seconds, ModelJoules: cost.Joules}
		if r.Queries > 0 {
			est.USPerQuery = cost.Seconds * 1e6 / float64(r.Queries)
			est.UJPerQuery = cost.Joules * 1e6 / float64(r.Queries)
		}
		r.Estimates[p.Name] = est
	}
	return r, nil
}
