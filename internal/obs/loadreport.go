package obs

import "time"

// LoadgenReport is the result block of one closed-loop load-generation run
// (cmd/reghd-loadgen): the latency digest of every completed request, the
// tenant mix actually driven, and the SLO verdict. It is printed (and, with
// -json, emitted as JSON) under the reghd.loadgen.* metric namespace
// documented in docs/OBSERVABILITY.md; quantiles carry the Histogram's
// ±6.25% bucket error while mean and max are exact.
type LoadgenReport struct {
	// DurationSeconds is the measured wall time of the run.
	DurationSeconds float64 `json:"duration_s"`
	// Concurrency is the number of closed-loop workers that drove the run.
	Concurrency int `json:"concurrency"`
	// Requests counts completed requests, including failed ones.
	Requests uint64 `json:"requests"`
	// Errors counts requests that failed (non-2xx status or transport
	// error).
	Errors uint64 `json:"errors"`
	// RatePerSec is Requests / DurationSeconds — the achieved closed-loop
	// throughput.
	RatePerSec float64 `json:"rate_per_s"`
	// MeanNS through MaxNS digest end-to-end request latency in
	// nanoseconds.
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	MaxNS  int64 `json:"max_ns"`
	// SLOMillis is the configured latency target in milliseconds (0 = no
	// SLO gate).
	SLOMillis float64 `json:"slo_ms"`
	// SLOQuantile is the quantile the SLO is evaluated at (e.g. 0.99).
	SLOQuantile float64 `json:"slo_quantile"`
	// SLOViolated reports whether the SLO quantile exceeded SLOMillis (or
	// errors exceeded the run's error budget) — the condition under which
	// reghd-loadgen exits nonzero.
	SLOViolated bool `json:"slo_violated"`
	// Tenants counts completed requests per tenant key — the realized
	// (e.g. zipfian) tenant mix.
	Tenants map[string]uint64 `json:"tenants"`
}

// NewLoadgenReport digests one finished run into a report. hist carries
// every completed request's latency; the SLO verdict compares the requested
// quantile against sloMillis (0 disables) and treats any errors beyond
// maxErrorRate·requests as a violation too.
func NewLoadgenReport(hist *Histogram, elapsed time.Duration, concurrency int,
	errors uint64, tenants map[string]uint64,
	sloMillis, sloQuantile, maxErrorRate float64) LoadgenReport {

	s := hist.Snapshot()
	rep := LoadgenReport{
		DurationSeconds: elapsed.Seconds(),
		Concurrency:     concurrency,
		Requests:        s.Count,
		Errors:          errors,
		MeanNS:          int64(s.Mean()),
		P50NS:           int64(s.Quantile(0.50)),
		P99NS:           int64(s.Quantile(0.99)),
		P999NS:          int64(s.Quantile(0.999)),
		MaxNS:           s.MaxNS,
		SLOMillis:       sloMillis,
		SLOQuantile:     sloQuantile,
		Tenants:         tenants,
	}
	if elapsed > 0 {
		rep.RatePerSec = float64(rep.Requests) / elapsed.Seconds()
	}
	if sloMillis > 0 {
		target := time.Duration(sloMillis * float64(time.Millisecond))
		if s.Quantile(sloQuantile) > target {
			rep.SLOViolated = true
		}
	}
	if rep.Requests > 0 && float64(rep.Errors) > maxErrorRate*float64(rep.Requests) {
		rep.SLOViolated = true
	}
	return rep
}
