package mlp

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/dataset"
	"reghd/internal/learner"
)

var _ learner.Regressor = (*Net)(nil)

func makeLinear(rng *rand.Rand, n, feats int, noise float64) *dataset.Dataset {
	w := make([]float64, feats)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	d := &dataset.Dataset{Name: "lin", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, feats)
		y := 0.5
		for j := range x {
			x[j] = rng.NormFloat64()
			y += w[j] * x[j]
		}
		d.X[i] = x
		d.Y[i] = y + noise*rng.NormFloat64()
	}
	return d
}

func makeNonlinear(rng *rand.Rand, n int) *dataset.Dataset {
	d := &dataset.Dataset{Name: "nl", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		d.X[i] = []float64{a, b}
		d.Y[i] = a*b + math.Sin(a) + 0.02*rng.NormFloat64()
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, DefaultConfig()); err == nil {
		t.Fatal("zero features accepted")
	}
	bad := []Config{
		{Hidden: []int{0}},
		{LearningRate: -1},
		{Momentum: 1.5},
		{Momentum: -0.1},
		{L2: -1},
		{BatchSize: -1},
		{Epochs: -1},
		{Activation: Activation(9)},
	}
	for i, c := range bad {
		if _, err := New(3, c); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Hidden) == 0 || c.LearningRate == 0 || c.BatchSize == 0 || c.Epochs == 0 {
		t.Fatalf("defaults missing: %+v", c)
	}
}

func TestActivationString(t *testing.T) {
	if ReLU.String() != "relu" || Tanh.String() != "tanh" {
		t.Fatal("activation names wrong")
	}
	if Activation(5).String() == "" {
		t.Fatal("unknown activation should still render")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	n, _ := New(2, DefaultConfig())
	if _, err := n.Predict([]float64{1, 2}); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
}

func TestFitRejectsBadData(t *testing.T) {
	n, _ := New(2, DefaultConfig())
	if err := n.Fit(&dataset.Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if err := n.Fit(&dataset.Dataset{X: [][]float64{{1}}, Y: []float64{1}}); err == nil {
		t.Fatal("feature mismatch accepted")
	}
}

func TestPredictChecksLength(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := makeLinear(rng, 50, 2, 0.01)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	n, _ := New(2, cfg)
	if err := n.Fit(d); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Predict([]float64{1}); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

func TestLearnsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	all := makeLinear(rng, 600, 4, 0.05)
	train := all.Subset(seq(0, 450))
	test := all.Subset(seq(450, 600))
	cfg := DefaultConfig()
	cfg.Epochs = 100
	cfg.Seed = 3
	n, _ := New(4, cfg)
	if err := n.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, err := learner.MSE(n, test)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.1 {
		t.Fatalf("linear test MSE %v too high", mse)
	}
}

func TestLearnsNonlinear(t *testing.T) {
	all := makeNonlinear(rand.New(rand.NewSource(4)), 900)
	train := all.Subset(seq(0, 700))
	test := all.Subset(seq(700, 900))
	cfg := DefaultConfig()
	cfg.Epochs = 250
	cfg.Seed = 5
	n, _ := New(2, cfg)
	if err := n.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, _ := learner.MSE(n, test)
	// Target variance ≈ 1.5; the network must capture the interaction term.
	if mse > 0.2 {
		t.Fatalf("nonlinear test MSE %v too high", mse)
	}
}

func TestTanhActivationTrains(t *testing.T) {
	all := makeNonlinear(rand.New(rand.NewSource(6)), 500)
	cfg := DefaultConfig()
	cfg.Activation = Tanh
	cfg.Epochs = 120
	n, _ := New(2, cfg)
	if err := n.Fit(all); err != nil {
		t.Fatal(err)
	}
	mse, _ := learner.MSE(n, all)
	if mse > 0.4 {
		t.Fatalf("tanh training MSE %v too high", mse)
	}
}

func TestDeterministic(t *testing.T) {
	all := makeLinear(rand.New(rand.NewSource(7)), 200, 3, 0.05)
	run := func() float64 {
		cfg := DefaultConfig()
		cfg.Epochs = 20
		cfg.Seed = 8
		n, _ := New(3, cfg)
		if err := n.Fit(all); err != nil {
			t.Fatal(err)
		}
		y, _ := n.Predict(all.X[0])
		return y
	}
	if run() != run() {
		t.Fatal("same seed produced different networks")
	}
}

func TestParamCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = []int{10, 5}
	n, _ := New(3, cfg)
	// (3·10+10) + (10·5+5) + (5·1+1) = 40 + 55 + 6 = 101
	if got := n.ParamCount(); got != 101 {
		t.Fatalf("ParamCount = %d, want 101", got)
	}
}

func TestNameAndInterface(t *testing.T) {
	n, _ := New(2, DefaultConfig())
	if n.Name() != "dnn" {
		t.Fatalf("Name = %q", n.Name())
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
