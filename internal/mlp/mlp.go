// Package mlp implements the DNN baseline of the paper's evaluation: a
// fully-connected feed-forward network trained by mini-batch SGD with
// momentum on the mean-squared-error loss. It stands in for the paper's
// TensorFlow models and doubles as the workload whose training/inference
// cost the hardware model compares against RegHD (Fig. 8).
package mlp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"reghd/internal/dataset"
)

// Activation selects the hidden-layer nonlinearity.
type Activation int

const (
	// ReLU is max(0, x), the default.
	ReLU Activation = iota
	// Tanh is the hyperbolic tangent.
	Tanh
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// Config holds the network and optimizer hyper-parameters.
type Config struct {
	// Hidden lists the hidden-layer widths, e.g. {64, 64}.
	Hidden []int
	// Activation is the hidden nonlinearity.
	Activation Activation
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient.
	Momentum float64
	// L2 is the weight-decay coefficient.
	L2 float64
	// BatchSize is the mini-batch size.
	BatchSize int
	// Epochs caps the number of passes over the training data.
	Epochs int
	// Seed drives initialization and shuffling.
	Seed int64
}

// DefaultConfig returns the grid-search center used in the evaluation:
// two hidden layers of 64 ReLU units, lr 0.01 with momentum 0.9.
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{64, 64},
		Activation:   ReLU,
		LearningRate: 0.01,
		Momentum:     0.9,
		L2:           1e-4,
		BatchSize:    32,
		Epochs:       200,
		Seed:         1,
	}
}

// Validate fills defaults and rejects invalid settings.
func (c *Config) Validate() error {
	if c.Hidden == nil {
		c.Hidden = []int{64, 64}
	}
	//lint:ignore floatcmp zero value selects the documented default
	if c.LearningRate == 0 {
		c.LearningRate = 0.01
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("mlp: hidden layer %d has non-positive width %d", i, h)
		}
	}
	switch {
	case c.LearningRate < 0:
		return errors.New("mlp: negative learning rate")
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("mlp: momentum must be in [0,1), got %v", c.Momentum)
	case c.L2 < 0:
		return errors.New("mlp: negative L2")
	case c.BatchSize < 0:
		return errors.New("mlp: negative batch size")
	case c.Epochs < 0:
		return errors.New("mlp: negative epochs")
	}
	switch c.Activation {
	case ReLU, Tanh:
	default:
		return fmt.Errorf("mlp: unknown activation %d", c.Activation)
	}
	return nil
}

// layer is one dense layer: out = act(W·in + b). Weights are row-major
// [outDim][inDim].
type layer struct {
	in, out int
	w       []float64
	b       []float64
	vw, vb  []float64 // momentum buffers
}

// Net is the feed-forward regressor.
type Net struct {
	cfg     Config
	layers  []*layer
	feats   int
	rng     *rand.Rand
	trained bool
}

// New constructs an untrained network for nFeatures inputs.
func New(nFeatures int, cfg Config) (*Net, error) {
	if nFeatures <= 0 {
		return nil, fmt.Errorf("mlp: nFeatures must be positive, got %d", nFeatures)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Net{cfg: cfg, feats: nFeatures, rng: rand.New(rand.NewSource(cfg.Seed))}
	sizes := append([]int{nFeatures}, cfg.Hidden...)
	sizes = append(sizes, 1)
	for i := 0; i+1 < len(sizes); i++ {
		l := &layer{in: sizes[i], out: sizes[i+1]}
		l.w = make([]float64, l.in*l.out)
		l.b = make([]float64, l.out)
		l.vw = make([]float64, len(l.w))
		l.vb = make([]float64, len(l.b))
		// Xavier/Glorot uniform initialization.
		limit := math.Sqrt(6 / float64(l.in+l.out))
		for j := range l.w {
			l.w[j] = (n.rng.Float64()*2 - 1) * limit
		}
		n.layers = append(n.layers, l)
	}
	return n, nil
}

// Name implements learner.Regressor.
func (n *Net) Name() string { return "dnn" }

// ParamCount returns the number of trainable parameters, used by the
// hardware cost model.
func (n *Net) ParamCount() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}

func (n *Net) activate(x float64) float64 {
	switch n.cfg.Activation {
	case Tanh:
		return math.Tanh(x)
	default:
		if x > 0 {
			return x
		}
		return 0
	}
}

func (n *Net) activateGrad(pre float64) float64 {
	switch n.cfg.Activation {
	case Tanh:
		t := math.Tanh(pre)
		return 1 - t*t
	default:
		if pre > 0 {
			return 1
		}
		return 0
	}
}

// forward runs the network, storing pre-activations and activations for
// backprop when train is true. acts[0] is the input; acts[i+1] the output
// of layer i.
func (n *Net) forward(x []float64, pres, acts [][]float64) float64 {
	copy(acts[0], x)
	for li, l := range n.layers {
		in := acts[li]
		pre := pres[li]
		out := acts[li+1]
		for o := 0; o < l.out; o++ {
			s := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, wv := range row {
				s += wv * in[i]
			}
			pre[o] = s
			if li == len(n.layers)-1 {
				out[o] = s // linear output layer
			} else {
				out[o] = n.activate(s)
			}
		}
	}
	return acts[len(acts)-1][0]
}

// scratch buffers for one sample's forward/backward pass.
type scratch struct {
	pres, acts, deltas [][]float64
	gw                 [][]float64
	gb                 [][]float64
}

func (n *Net) newScratch() *scratch {
	s := &scratch{}
	s.acts = append(s.acts, make([]float64, n.feats))
	for _, l := range n.layers {
		s.pres = append(s.pres, make([]float64, l.out))
		s.acts = append(s.acts, make([]float64, l.out))
		s.deltas = append(s.deltas, make([]float64, l.out))
		s.gw = append(s.gw, make([]float64, len(l.w)))
		s.gb = append(s.gb, make([]float64, len(l.b)))
	}
	return s
}

// backward accumulates gradients for one sample given the output error
// derivative dLoss/dOut.
func (n *Net) backward(s *scratch, dOut float64) {
	last := len(n.layers) - 1
	s.deltas[last][0] = dOut
	for li := last; li >= 0; li-- {
		l := n.layers[li]
		in := s.acts[li]
		delta := s.deltas[li]
		gw := s.gw[li]
		gb := s.gb[li]
		for o := 0; o < l.out; o++ {
			d := delta[o]
			//lint:ignore floatcmp exact-zero gradient skip: pure optimization, bit-identical result
			if d == 0 {
				continue
			}
			gb[o] += d
			row := gw[o*l.in : (o+1)*l.in]
			for i := range row {
				row[i] += d * in[i]
			}
		}
		if li == 0 {
			continue
		}
		prev := s.deltas[li-1]
		prevPre := s.pres[li-1]
		for i := range prev {
			var sum float64
			for o := 0; o < l.out; o++ {
				sum += s.deltas[li][o] * l.w[o*l.in+i]
			}
			prev[i] = sum * n.activateGrad(prevPre[i])
		}
	}
}

// applyGradients performs one momentum-SGD step with the accumulated batch
// gradients, then clears them.
func (n *Net) applyGradients(s *scratch, batch float64) {
	lr := n.cfg.LearningRate / batch
	for li, l := range n.layers {
		gw := s.gw[li]
		gb := s.gb[li]
		for j := range l.w {
			g := gw[j] + n.cfg.L2*l.w[j]*batch
			l.vw[j] = n.cfg.Momentum*l.vw[j] - lr*g
			l.w[j] += l.vw[j]
			gw[j] = 0
		}
		for j := range l.b {
			l.vb[j] = n.cfg.Momentum*l.vb[j] - lr*gb[j]
			l.b[j] += l.vb[j]
			gb[j] = 0
		}
	}
}

// Fit trains the network with mini-batch SGD.
func (n *Net) Fit(train *dataset.Dataset) error {
	if err := train.Validate(); err != nil {
		return err
	}
	if train.Features() != n.feats {
		return fmt.Errorf("mlp: dataset has %d features, network expects %d", train.Features(), n.feats)
	}
	s := n.newScratch()
	nSamples := train.Len()
	for ep := 0; ep < n.cfg.Epochs; ep++ {
		order := n.rng.Perm(nSamples)
		for start := 0; start < nSamples; start += n.cfg.BatchSize {
			end := start + n.cfg.BatchSize
			if end > nSamples {
				end = nSamples
			}
			for _, idx := range order[start:end] {
				yhat := n.forward(train.X[idx], s.pres, s.acts)
				// d/dŷ of ½(ŷ−y)² = (ŷ−y).
				n.backward(s, yhat-train.Y[idx])
			}
			n.applyGradients(s, float64(end-start))
		}
	}
	n.trained = true
	return nil
}

// ErrNotTrained is returned by Predict before Fit.
var ErrNotTrained = errors.New("mlp: network has not been trained")

// Predict returns the network output for x.
func (n *Net) Predict(x []float64) (float64, error) {
	if !n.trained {
		return 0, ErrNotTrained
	}
	if len(x) != n.feats {
		return 0, fmt.Errorf("mlp: input has %d features, network expects %d", len(x), n.feats)
	}
	s := n.newScratch()
	return n.forward(x, s.pres, s.acts), nil
}
