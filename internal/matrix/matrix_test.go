package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Fatalf("FromRows wrong: %+v", m)
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestSetAtCloneRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone shares storage")
	}
	r := m.Row(1)
	r[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row should share storage")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("T values wrong")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for r := range want {
		for cc := range want[r] {
			if c.At(r, cc) != want[r][cc] {
				t.Fatalf("Mul = %+v", c)
			}
		}
	}
	if _, err := Mul(a, New(3, 2)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(7, 4)
	x.RandomUniform(rng, -1, 1)
	g := Gram(x)
	explicit, _ := Mul(x.T(), x)
	for i := range g.Data {
		if math.Abs(g.Data[i]-explicit.Data[i]) > 1e-9 {
			t.Fatal("Gram differs from XᵀX")
		}
	}
	// Symmetry.
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatal("Gram not symmetric")
			}
		}
	}
}

func TestAddDiagonal(t *testing.T) {
	m := New(3, 3)
	m.AddDiagonal(2.5)
	for i := 0; i < 3; i++ {
		if m.At(i, i) != 2.5 {
			t.Fatal("AddDiagonal wrong")
		}
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := CholeskySolve(a, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=10, 2x+3y=8 → x=1.75, y=1.5
	if math.Abs(x[0]-1.75) > 1e-12 || math.Abs(x[1]-1.5) > 1e-12 {
		t.Fatalf("solution %v", x)
	}
}

func TestCholeskySolveErrors(t *testing.T) {
	if _, err := CholeskySolve(New(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := CholeskySolve(New(2, 2), []float64{1}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
	notSPD, _ := FromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := CholeskySolve(notSPD, []float64{1, 2}); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	indef, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := CholeskySolve(indef, []float64{1, 2}); err != ErrNotSPD {
		t.Fatalf("indefinite: err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskySolveResidualProperty(t *testing.T) {
	// For random SPD systems (Gram + ridge), the solve residual must vanish.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		x := New(n+3, n)
		x.RandomUniform(rng, -2, 2)
		a := Gram(x)
		a.AddDiagonal(0.5)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		sol, err := CholeskySolve(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MulVec(sol)
		if err != nil {
			return false
		}
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 4)
		b := New(4, 2)
		c := New(2, 5)
		a.RandomUniform(rng, -1, 1)
		b.RandomUniform(rng, -1, 1)
		c.RandomUniform(rng, -1, 1)
		ab, _ := Mul(a, b)
		abc1, _ := Mul(ab, c)
		bc, _ := Mul(b, c)
		abc2, _ := Mul(a, bc)
		for i := range abc1.Data {
			if math.Abs(abc1.Data[i]-abc2.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
