// Package matrix provides the small dense linear-algebra kernel used by the
// DNN and linear-regression baselines: row-major dense matrices, products,
// and a Cholesky solver for symmetric positive-definite systems (the normal
// equations of ridge regression). The Go standard library offers no linear
// algebra, so the baselines carry their own.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("matrix: empty input")
	}
	m := New(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			return nil, fmt.Errorf("matrix: row %d has %d columns, want %d", r, len(row), m.Cols)
		}
		copy(m.Data[r*m.Cols:(r+1)*m.Cols], row)
	}
	return m, nil
}

// At returns the element at row r, column c.
func (m *Dense) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Dense) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns the r-th row as a slice sharing storage with m.
func (m *Dense) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*out.Cols+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// Mul returns a·b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		orow := out.Data[r*out.Cols : (r+1)*out.Cols]
		for k, av := range arow {
			//lint:ignore floatcmp exact-zero sparse skip: pure optimization, bit-identical result
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for c, bv := range brow {
				orow[c] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m·v.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("matrix: MulVec length %d, want %d", len(v), m.Cols)
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var s float64
		for c, rv := range row {
			s += rv * v[c]
		}
		out[r] = s
	}
	return out, nil
}

// Gram returns XᵀX for the design matrix X, an SPD matrix when X has full
// column rank.
func Gram(x *Dense) *Dense {
	out := New(x.Cols, x.Cols)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for i, vi := range row {
			//lint:ignore floatcmp exact-zero sparse skip: pure optimization, bit-identical result
			if vi == 0 {
				continue
			}
			orow := out.Data[i*out.Cols:]
			for j := i; j < len(row); j++ {
				orow[j] += vi * row[j]
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < out.Rows; i++ {
		for j := i + 1; j < out.Cols; j++ {
			out.Data[j*out.Cols+i] = out.Data[i*out.Cols+j]
		}
	}
	return out
}

// AddDiagonal adds lambda to every diagonal element in place (ridge term).
func (m *Dense) AddDiagonal(lambda float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += lambda
	}
}

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot.
var ErrNotSPD = errors.New("matrix: matrix is not symmetric positive definite")

// CholeskySolve solves a·x = b for symmetric positive-definite a.
func CholeskySolve(a *Dense, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matrix: CholeskySolve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("matrix: rhs length %d, want %d", len(b), n)
	}
	// Factor a = L·Lᵀ.
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotSPD
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// RandomUniform fills m with i.i.d. values uniform in [lo, hi).
func (m *Dense) RandomUniform(rng *rand.Rand, lo, hi float64) {
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}
