package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/hdc"
)

// store is one faultable hypervector store of the wrapped model: either a
// dense float64 store (64 faultable bits per component) or a bit-packed
// binary store (1 bit per component). Exactly one of dense/packed is set.
type store struct {
	name   string
	dense  []hdc.Vector
	packed []*hdc.Binary
	// perVec is the faultable bit count of one vector; bits is the total
	// across the store. Global fault positions in [0, bits) map to
	// (vector p/perVec, local bit p%perVec).
	perVec int
	bits   int
	// carry is the fractional flip count carried between rounds so long
	// runs average to the exact bit-error rate.
	carry float64
}

// flipCount converts a bit-error rate into this round's flip count:
// ⌊BER·bits + carry⌋, with the fractional residue carried forward.
func (s *store) flipCount(ber float64) int {
	want := ber*float64(s.bits) + s.carry
	k := int(math.Floor(want))
	s.carry = want - float64(k)
	if k > s.bits {
		k = s.bits
	}
	return k
}

// applyFlips flips the store bits at the given global positions. XOR-based
// throughout, so applying the same positions again reverts the store
// bit-exactly.
func (s *store) applyFlips(pos []int) {
	for _, p := range pos {
		v, b := p/s.perVec, p%s.perVec
		if s.dense != nil {
			FlipDenseBits(s.dense[v], []int{b})
		} else {
			s.packed[v].FlipBits([]int{b})
		}
	}
}

// predictionStores resolves the hypervector stores the model's configured
// prediction path actually reads — faults anywhere else could never move a
// prediction, so injecting them would only dilute the measured rate.
func predictionStores(m *core.Model) []*store {
	fv := m.FaultView()
	cfg := m.Config()
	dim := m.Dim()
	var out []*store
	add := func(st *store, n int) {
		st.bits = st.perVec * n
		if st.bits > 0 {
			out = append(out, st)
		}
	}
	if cfg.Models > 1 {
		if cfg.ClusterMode == core.ClusterInteger {
			add(&store{name: "clusters", dense: fv.Clusters, perVec: 64 * dim}, len(fv.Clusters))
		} else {
			add(&store{name: "clusters-bin", packed: fv.ClustersBin, perVec: dim}, len(fv.ClustersBin))
		}
	}
	if cfg.PredictMode.UsesBinaryModel() {
		add(&store{name: "models-bin", packed: fv.ModelsBin, perVec: dim}, len(fv.ModelsBin))
	} else {
		add(&store{name: "models", dense: fv.Models, perVec: 64 * dim}, len(fv.Models))
	}
	return out
}

// Injector wraps a private clone of a trained model and serves predictions
// through injected memory faults. All methods serialize on an internal
// lock; the wrapped clone is never reachable from outside, so the
// injector's fault bookkeeping is the only writer it has.
type Injector struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	model   *core.Model
	stores  []*store
	flipped uint64
}

// New wraps a deep clone of m (the original is never touched) with the
// given fault configuration. Sticky mode injects its first fault round
// immediately; transient mode leaves storage pristine until the first
// read. Fails if the model materializes no faultable store for its
// prediction path.
func New(m *core.Model, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("fault: nil model")
	}
	in := &Injector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		model: m.Clone(),
	}
	in.stores = predictionStores(in.model)
	if len(in.stores) == 0 {
		return nil, ErrNoTarget
	}
	if cfg.Mode == Sticky {
		in.injectLocked()
	}
	return in, nil
}

// injectLocked draws and applies one fault round across every store.
// Callers must hold in.mu (or be the constructor).
func (in *Injector) injectLocked() [][]int {
	rounds := make([][]int, len(in.stores))
	for i, s := range in.stores {
		k := s.flipCount(in.cfg.BER)
		if k == 0 {
			continue
		}
		pos := sampleBits(in.rng, s.bits, k)
		s.applyFlips(pos)
		rounds[i] = pos
		in.flipped += uint64(len(pos))
	}
	return rounds
}

// revertLocked undoes one fault round returned by injectLocked.
func (in *Injector) revertLocked(rounds [][]int) {
	for i, pos := range rounds {
		in.stores[i].applyFlips(pos)
	}
}

// Advance injects one additional persistent fault round, modeling error
// accumulation over deployment time. Sticky mode only.
func (in *Injector) Advance() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.Mode != Sticky {
		return fmt.Errorf("fault: Advance requires Sticky mode, injector is %s", in.cfg.Mode)
	}
	in.injectLocked()
	return nil
}

// Predict serves one prediction through the fault model: transient mode
// corrupts the stores, predicts, and reverts them bit-exactly (even when
// prediction fails); sticky mode predicts against the persistently
// corrupted storage.
func (in *Injector) Predict(x []float64) (float64, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.Mode == Sticky {
		return in.model.Predict(x)
	}
	rounds := in.injectLocked()
	y, err := in.model.Predict(x)
	in.revertLocked(rounds)
	return y, err
}

// PredictBatch serves each row through Predict — under transient faults
// every row observes an independent corruption, matching the per-read
// semantics.
func (in *Injector) PredictBatch(xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		y, err := in.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("fault: predicting row %d: %w", i, err)
		}
		out[i] = y
	}
	return out, nil
}

// Evaluate returns the mean squared error of faulted predictions over the
// dataset. Non-finite predictions (a dense exponent-bit flip can produce
// Inf/NaN) propagate into the result rather than erroring: a non-finite
// MSE is the honest measurement of a catastrophically failed deployment.
func (in *Injector) Evaluate(d *dataset.Dataset) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	var sse float64
	for i, x := range d.X {
		y, err := in.Predict(x)
		if err != nil {
			return 0, fmt.Errorf("fault: evaluating row %d: %w", i, err)
		}
		r := y - d.Y[i]
		sse += r * r
	}
	return sse / float64(len(d.X)), nil
}

// Snapshot publishes the wrapped model's current state as an immutable
// serving snapshot: under Sticky mode that state carries every fault
// injected so far, which is how the serving chaos tests hand a corrupted
// model to an Engine. Under Transient mode the storage is pristine between
// reads, so the snapshot is fault-free.
func (in *Injector) Snapshot() *core.Snapshot {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.model.Snapshot()
}

// BitsFlipped reports the total number of bit flips applied so far
// (transient flips count once per read; reverts do not count).
func (in *Injector) BitsFlipped() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.flipped
}

// TargetBits reports the total faultable bit count across the stores the
// prediction path reads — the denominator of the bit-error rate.
func (in *Injector) TargetBits() int {
	var n int
	for _, s := range in.stores {
		n += s.bits
	}
	return n
}

// Stores names the faulted stores, for experiment logs and tests.
func (in *Injector) Stores() []string {
	out := make([]string, len(in.stores))
	for i, s := range in.stores {
		out[i] = s.name
	}
	return out
}
