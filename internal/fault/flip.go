package fault

import (
	"math"
	"math/rand"

	"reghd/internal/hdc"
)

// sampleBits draws k distinct bit positions uniformly from [0, n) using
// Floyd's algorithm: O(k) time and space regardless of n, and fully
// deterministic under the caller's rng. The result order is the draw
// order, which flip application and reversal both preserve (they are
// order-independent XORs anyway).
func sampleBits(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// FlipDenseBits flips raw IEEE-754 bits of a dense float64 hypervector:
// bit index b addresses bit b%64 of component b/64, so the valid range is
// [0, 64·len(v)). This is the full-precision memory-fault model — a flip
// may land in the mantissa (small perturbation), the exponent (magnitude
// explosion), or the sign. Self-inverse: flipping the same bits again
// restores v exactly, including NaN payloads.
func FlipDenseBits(v hdc.Vector, bitIdx []int) {
	for _, b := range bitIdx {
		c := b / 64
		v[c] = math.Float64frombits(math.Float64bits(v[c]) ^ (1 << uint(b%64)))
	}
}

// FlipSigns flips the sign of the addressed components of a dense bipolar
// (±1) hypervector — the one-bit-per-component fault model for dense
// bipolar storage. Index range is [0, len(v)). Self-inverse. A true zero
// component stays zero (its sign carries no information).
func FlipSigns(v hdc.Vector, idx []int) {
	for _, i := range idx {
		v[i] = -v[i]
	}
}

// FlipPackedBits flips the addressed component bits of a bit-packed binary
// hypervector. Index range is [0, b.Dim). Self-inverse (XOR). It is a thin
// named wrapper over (*hdc.Binary).FlipBits so all three representation
// primitives live side by side.
func FlipPackedBits(b *hdc.Binary, idx []int) {
	b.FlipBits(idx)
}
