package fault

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/hdc"
)

// FuzzBitFlip fuzzes the self-inverse contract every fault mode leans on:
// for any dimension, flip count, and seed, applying the same flip set twice
// restores dense, bipolar, and bit-packed hypervectors bit-exactly. The
// transient fault path reverts faults by re-applying them, so a violation
// here would silently corrupt "pristine" storage.
func FuzzBitFlip(f *testing.F) {
	f.Add(int64(1), 64, 10)
	f.Add(int64(2), 1, 1)
	f.Add(int64(3), 257, 1000)
	f.Add(int64(4), 4096, 0)
	f.Fuzz(func(t *testing.T, seed int64, dim, k int) {
		if dim < 1 || dim > 1<<14 || k < 0 || k > 1<<16 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))

		dense := make(hdc.Vector, dim)
		for i := range dense {
			// Include extreme magnitudes and specials: the round trip must
			// hold for any stored bit pattern.
			switch rng.Intn(8) {
			case 0:
				dense[i] = math.Inf(1 - 2*rng.Intn(2))
			case 1:
				dense[i] = 0
			default:
				dense[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
			}
		}
		orig := dense.Clone()
		bits := sampleBits(rng, 64*dim, k)
		FlipDenseBits(dense, bits)
		FlipDenseBits(dense, bits)
		for i := range dense {
			if math.Float64bits(dense[i]) != math.Float64bits(orig[i]) {
				t.Fatalf("dense component %d not restored: %v -> %v", i, orig[i], dense[i])
			}
		}

		bipolar := hdc.RandomBipolar(rng, dim)
		borig := bipolar.Clone()
		idx := sampleBits(rng, dim, k)
		FlipSigns(bipolar, idx)
		FlipSigns(bipolar, idx)
		for i := range bipolar {
			if math.Float64bits(bipolar[i]) != math.Float64bits(borig[i]) {
				t.Fatalf("bipolar component %d not restored: %v -> %v", i, borig[i], bipolar[i])
			}
		}

		packed := hdc.Pack(nil, hdc.RandomBipolar(rng, dim))
		porig := packed.Clone()
		pidx := sampleBits(rng, dim, k)
		FlipPackedBits(packed, pidx)
		FlipPackedBits(packed, pidx)
		if !packed.Equal(porig) {
			t.Fatal("packed vector not restored")
		}
		// Tail invariant: bits at positions >= Dim must stay clear, or
		// popcount identities downstream (Hamming, DotBinary) break.
		if r := dim % 64; r != 0 {
			if packed.Words[len(packed.Words)-1]>>uint(r) != 0 {
				t.Fatal("tail bits set beyond Dim")
			}
		}
	})
}
