package fault

import (
	"math"
	"testing"
	"time"
)

// TestNetConfigValidate pins the config contract.
func TestNetConfigValidate(t *testing.T) {
	good := NetConfig{Drop: 0.1, Delay: 0.1, MaxDelay: time.Millisecond, Duplicate: 0.1, Reorder: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]NetConfig{
		"drop>1":            {Drop: 1.5},
		"delay<0":           {Delay: -0.1},
		"dup>1":             {Duplicate: 2},
		"reorder<0":         {Reorder: -1},
		"delay-no-maxdelay": {Delay: 0.5},
		"negative-maxdelay": {MaxDelay: -time.Second},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
		if _, err := NewNetFaults(cfg); err == nil {
			t.Errorf("%s: NewNetFaults accepted %+v", name, cfg)
		}
	}
}

// TestNetFaultsDeterministic pins the seeding contract: equal configs and
// equal call sequences produce identical decision sequences, and partition
// checks consume no randomness — a heal resumes the sequence exactly.
func TestNetFaultsDeterministic(t *testing.T) {
	cfg := NetConfig{Drop: 0.2, Delay: 0.3, MaxDelay: 5 * time.Millisecond, Duplicate: 0.1, Reorder: 0.15, Seed: 42}
	a, err := NewNetFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNetFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// b spends its first 50 calls inside a partition window; those return
	// Drop without touching the rng, so afterwards it must track a exactly.
	b.Isolate(1)
	for i := 0; i < 50; i++ {
		if d := b.Decide(0, 1); !d.Drop || d.Delay != 0 || d.Duplicate || d.Reorder {
			t.Fatalf("partitioned decision %d = %+v, want pure drop", i, d)
		}
	}
	b.Heal(0, 1)
	for i := 0; i < 500; i++ {
		from, to := i%3, (i+1)%3
		da, db := a.Decide(from, to), b.Decide(from, to)
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

// TestNetFaultsRates pins that realized fault frequencies track the
// configured probabilities over a long run.
func TestNetFaultsRates(t *testing.T) {
	cfg := NetConfig{Drop: 0.1, Delay: 0.2, MaxDelay: 3 * time.Millisecond, Duplicate: 0.05, Reorder: 0.15, Seed: 7}
	n, err := NewNetFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	var drops, delays, dups, reorders int
	for i := 0; i < trials; i++ {
		d := n.Decide(0, 1)
		if d.Drop {
			drops++
			continue
		}
		if d.Delay > 0 {
			delays++
			if d.Delay > cfg.MaxDelay {
				t.Fatalf("delay %v exceeds MaxDelay %v", d.Delay, cfg.MaxDelay)
			}
		}
		if d.Duplicate {
			dups++
		}
		if d.Reorder {
			reorders++
		}
	}
	within := func(name string, got int, want float64) {
		// Dropped messages never report the other faults, so the surviving
		// rates are scaled by (1 - Drop).
		rate := float64(got) / trials
		if math.Abs(rate-want) > 0.02 {
			t.Errorf("%s rate %.3f, want ~%.3f", name, rate, want)
		}
	}
	within("drop", drops, cfg.Drop)
	within("delay", delays, cfg.Delay*(1-cfg.Drop))
	within("duplicate", dups, cfg.Duplicate*(1-cfg.Drop))
	within("reorder", reorders, cfg.Reorder*(1-cfg.Drop))
}

// TestNetFaultsPartition pins the partition set semantics: link cuts,
// node isolation, healing, and symmetry.
func TestNetFaultsPartition(t *testing.T) {
	n, err := NewNetFaults(NetConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.Partitioned(0, 1) {
		t.Fatal("fresh NetFaults has a partition")
	}
	n.Cut(0, 1)
	if !n.Partitioned(0, 1) || !n.Partitioned(1, 0) {
		t.Fatal("Cut is not symmetric")
	}
	if n.Partitioned(0, 2) {
		t.Fatal("Cut(0,1) severed an unrelated link")
	}
	n.Heal(1, 0)
	if n.Partitioned(0, 1) {
		t.Fatal("Heal did not restore the link")
	}
	n.Isolate(2)
	if !n.Partitioned(0, 2) || !n.Partitioned(2, 1) {
		t.Fatal("Isolate did not sever all links of the node")
	}
	if n.Partitioned(0, 1) {
		t.Fatal("Isolate(2) severed a link not touching 2")
	}
	if d := n.Decide(2, 0); !d.Drop {
		t.Fatal("Decide over an isolated node did not drop")
	}
	n.HealAll()
	if n.Partitioned(0, 2) || n.Partitioned(2, 1) {
		t.Fatal("HealAll left partitions behind")
	}
	// A healthy link with zero rates passes everything through.
	if d := n.Decide(0, 1); d.Drop || d.Delay != 0 || d.Duplicate || d.Reorder {
		t.Fatalf("zero-rate decision %+v, want clean pass", d)
	}
}
