package fault

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// trainedModel returns a small trained model for the given modes.
func trainedModel(t *testing.T, cm core.ClusterMode, pm core.PredictMode) (*core.Model, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	n, feats := 200, 3
	d := &dataset.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := range d.X {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		d.X[i] = x
		d.Y[i] = 0.8*x[0] - 0.5*x[1] + 0.3*x[2]*x[2] + 0.02*rng.NormFloat64()
	}
	enc, err := encoding.NewNonlinear(rand.New(rand.NewSource(9)), feats, 256)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(enc, core.Config{Models: 4, Epochs: 5, Seed: 3, ClusterMode: cm, PredictMode: pm})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{BER: -0.1}).Validate(); err == nil {
		t.Fatal("negative BER accepted")
	}
	if err := (Config{BER: 1.5}).Validate(); err == nil {
		t.Fatal("BER > 1 accepted")
	}
	if err := (Config{BER: 0.1, Mode: Mode(9)}).Validate(); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := (Config{BER: 0.01, Mode: Sticky}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// vecEqual compares two dense vectors bit-exactly (NaN payloads included,
// which float == would miss).
func vecEqual(a, b hdc.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestFlipPrimitivesSelfInverse pins the XOR/negation round-trip for all
// three representations: applying the same flip set twice is an exact
// identity.
func TestFlipPrimitivesSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dense := make(hdc.Vector, 97)
	for i := range dense {
		dense[i] = rng.NormFloat64() * 100
	}
	orig := dense.Clone()
	bits := sampleBits(rng, 64*len(dense), 200)
	FlipDenseBits(dense, bits)
	if vecEqual(dense, orig) {
		t.Fatal("dense flips were a no-op")
	}
	FlipDenseBits(dense, bits)
	if !vecEqual(dense, orig) {
		t.Fatal("dense double-flip did not restore the vector")
	}

	bipolar := hdc.RandomBipolar(rng, 131)
	borig := bipolar.Clone()
	idx := sampleBits(rng, len(bipolar), 40)
	FlipSigns(bipolar, idx)
	if vecEqual(bipolar, borig) {
		t.Fatal("sign flips were a no-op")
	}
	FlipSigns(bipolar, idx)
	if !vecEqual(bipolar, borig) {
		t.Fatal("sign double-flip did not restore the vector")
	}

	packed := hdc.Pack(nil, hdc.RandomBipolar(rng, 200))
	porig := packed.Clone()
	pidx := sampleBits(rng, packed.Dim, 60)
	FlipPackedBits(packed, pidx)
	if packed.Equal(porig) {
		t.Fatal("packed flips were a no-op")
	}
	FlipPackedBits(packed, pidx)
	if !packed.Equal(porig) {
		t.Fatal("packed double-flip did not restore the vector")
	}
}

func TestSampleBitsDistinctInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, k int }{{100, 0}, {100, 1}, {100, 50}, {100, 100}, {100, 150}, {7, 7}} {
		pos := sampleBits(rng, tc.n, tc.k)
		want := tc.k
		if want > tc.n {
			want = tc.n
		}
		if len(pos) != want {
			t.Fatalf("sampleBits(%d,%d) returned %d positions", tc.n, tc.k, len(pos))
		}
		seen := map[int]bool{}
		for _, p := range pos {
			if p < 0 || p >= tc.n {
				t.Fatalf("position %d out of range [0,%d)", p, tc.n)
			}
			if seen[p] {
				t.Fatalf("duplicate position %d", p)
			}
			seen[p] = true
		}
	}
}

// TestTransientLeavesStoresPristine is the transient contract: after any
// number of reads, the wrapped model's serialized state is bit-identical
// to a fault-free clone's.
func TestTransientLeavesStoresPristine(t *testing.T) {
	m, d := trainedModel(t, core.ClusterBinary, core.PredictBinaryBoth)
	in, err := New(m, Config{BER: 0.02, Mode: Transient, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := m.Save(&want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := in.Predict(d.X[i]); err != nil {
			t.Fatal(err)
		}
	}
	if in.BitsFlipped() == 0 {
		t.Fatal("no faults were injected")
	}
	var got bytes.Buffer
	if err := in.model.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("transient faults leaked into the stored model state")
	}
}

// TestStickyPersists: sticky faults move predictions and stay applied.
func TestStickyPersists(t *testing.T) {
	m, d := trainedModel(t, core.ClusterBinary, core.PredictBinaryBoth)
	in, err := New(m, Config{BER: 0.05, Mode: Sticky, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if in.BitsFlipped() == 0 {
		t.Fatal("sticky construction injected nothing")
	}
	clean, err := m.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	faulty1, err := in.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	faulty2, err := in.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if faulty1 != faulty2 {
		t.Fatalf("sticky faults should be stable across reads: %v vs %v", faulty1, faulty2)
	}
	if faulty1 == clean {
		t.Fatal("5% sticky BER did not move the prediction at all")
	}
	before := in.BitsFlipped()
	if err := in.Advance(); err != nil {
		t.Fatal(err)
	}
	if in.BitsFlipped() <= before {
		t.Fatal("Advance injected nothing")
	}
}

func TestTransientAdvanceRejected(t *testing.T) {
	m, _ := trainedModel(t, core.ClusterBinary, core.PredictBinaryBoth)
	in, err := New(m, Config{BER: 0.01, Mode: Transient, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Advance(); err == nil {
		t.Fatal("Advance accepted in transient mode")
	}
}

// TestDeterminism: equal seeds reproduce equal fault sequences and hence
// equal predictions; different seeds diverge.
func TestDeterminism(t *testing.T) {
	m, d := trainedModel(t, core.ClusterBinary, core.PredictBinaryQuery)
	run := func(seed int64) []float64 {
		in, err := New(m, Config{BER: 0.01, Mode: Transient, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ys, err := in.PredictBatch(d.X[:30])
		if err != nil {
			t.Fatal(err)
		}
		return ys
	}
	// Bit-exact comparison: dense-store faults can legitimately produce
	// NaN predictions, which plain == would misjudge.
	a, b, c := run(7), run(7), run(8)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("row %d: same seed diverged: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestZeroBERIsIdentity: a zero error rate never flips anything and
// predictions match the clean model exactly.
func TestZeroBERIsIdentity(t *testing.T) {
	for _, mode := range []Mode{Transient, Sticky} {
		m, d := trainedModel(t, core.ClusterBinary, core.PredictBinaryBoth)
		in, err := New(m, Config{BER: 0, Mode: mode, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			want, err := m.Predict(d.X[i])
			if err != nil {
				t.Fatal(err)
			}
			got, err := in.Predict(d.X[i])
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("%s: zero BER changed prediction %d: %v vs %v", mode, i, want, got)
			}
		}
		if in.BitsFlipped() != 0 {
			t.Fatalf("%s: zero BER flipped %d bits", mode, in.BitsFlipped())
		}
	}
}

// TestTargetStores: the injector faults exactly the representations the
// prediction path reads.
func TestTargetStores(t *testing.T) {
	for _, tc := range []struct {
		cm   core.ClusterMode
		pm   core.PredictMode
		want []string
	}{
		{core.ClusterInteger, core.PredictFull, []string{"clusters", "models"}},
		{core.ClusterBinary, core.PredictBinaryQuery, []string{"clusters-bin", "models"}},
		{core.ClusterBinary, core.PredictBinaryBoth, []string{"clusters-bin", "models-bin"}},
		{core.ClusterBinary, core.PredictBinaryModel, []string{"clusters-bin", "models-bin"}},
	} {
		m, _ := trainedModel(t, tc.cm, tc.pm)
		in, err := New(m, Config{BER: 0.01, Mode: Sticky, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		got := in.Stores()
		if len(got) != len(tc.want) {
			t.Fatalf("%s/%s: stores %v, want %v", tc.cm, tc.pm, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s/%s: stores %v, want %v", tc.cm, tc.pm, got, tc.want)
			}
		}
		if in.TargetBits() == 0 {
			t.Fatalf("%s/%s: zero target bits", tc.cm, tc.pm)
		}
	}
}

// TestCarryAveragesRate: with BER·bits < 1 the carry still realizes flips
// at the exact long-run rate instead of rounding every round to zero.
func TestCarryAveragesRate(t *testing.T) {
	m, d := trainedModel(t, core.ClusterBinary, core.PredictBinaryBoth)
	in, err := New(m, Config{BER: 0.0001, Mode: Transient, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	reads := 200
	for i := 0; i < reads; i++ {
		if _, err := in.Predict(d.X[i%len(d.X)]); err != nil {
			t.Fatal(err)
		}
	}
	// Expected flips per read = BER * targetBits per store, summed. With
	// floor+carry the realized total must be within one flip per store of
	// the exact expectation.
	want := 0.0001 * float64(in.TargetBits()) * float64(reads)
	got := float64(in.BitsFlipped())
	if math.Abs(got-want) > float64(len(in.Stores())) {
		t.Fatalf("realized flips %v, want ~%v", got, want)
	}
}

func TestEvaluateDegrades(t *testing.T) {
	m, d := trainedModel(t, core.ClusterBinary, core.PredictBinaryBoth)
	clean, err := m.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(m, Config{BER: 0.2, Mode: Sticky, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := in.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if !(faulty > clean) {
		t.Fatalf("20%% BER did not degrade MSE: clean %v, faulty %v", clean, faulty)
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(nil, Config{BER: 0.1}); err == nil {
		t.Fatal("nil model accepted")
	}
	m, _ := trainedModel(t, core.ClusterBinary, core.PredictBinaryBoth)
	if _, err := New(m, Config{BER: 2}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := New(m, Config{BER: 0.1, Mode: Sticky, Seed: 1}); err != nil {
		t.Fatalf("valid wrap rejected: %v", err)
	}
	var sentinel error = ErrNoTarget
	if !errors.Is(sentinel, ErrNoTarget) {
		t.Fatal("sentinel identity broken")
	}
}
