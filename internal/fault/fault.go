// Package fault is the deterministic fault-injection substrate behind the
// paper's robustness claim (the "R" in RegHD): hyperdimensional models
// spread information holographically across thousands of components, so
// random bit errors in the stored hypervectors — the dominant failure mode
// of dense on-chip memories running at reduced voltage — should degrade
// prediction quality gracefully, and most gracefully for the quantized
// models of Section 3, whose single-bit components cannot be knocked into
// huge magnitudes the way an IEEE-754 exponent bit can.
//
// The package provides two layers:
//
//   - Bit-flip primitives over the three hypervector representations the
//     system stores: dense float64 vectors (faults flip raw IEEE-754 word
//     bits), bipolar ±1 vectors (faults flip component signs), and
//     bit-packed binary vectors (faults flip packed bits). Every primitive
//     is self-inverse — applying the same flip set twice restores the
//     vector bit-exactly — which is what makes transient faults revertible
//     and is pinned by FuzzBitFlip.
//
//   - An Injector that wraps a private clone of a core.Model and applies
//     faults, at a configurable bit-error rate, to exactly the stores the
//     configured prediction path reads (integer or binary clusters,
//     integer or binary regression models). Transient mode redraws faults
//     on every read and reverts them afterwards, modeling soft errors on
//     the read path; Sticky mode corrupts the stored state persistently
//     and accumulates further rounds on Advance, modeling hard errors and
//     aging.
//
// Everything is seeded: the same Config against the same model and call
// sequence produces bit-identical faults, so the robustness experiments
// (internal/experiments, `reghd-bench -exp bitflip`) and the serving chaos
// tests are reproducible. See docs/ROBUSTNESS.md.
package fault

import (
	"errors"
	"fmt"
)

// Mode selects how long injected faults live.
type Mode int

const (
	// Transient redraws faults on every read and reverts them afterwards:
	// each Predict observes an independently corrupted view of the stored
	// hypervectors while the storage itself stays pristine. This is the
	// soft-error model (radiation upsets, read disturbs).
	Transient Mode = iota
	// Sticky corrupts the stored hypervectors persistently: one round of
	// faults is injected when the Injector is built, every Advance call
	// injects another, and nothing is ever reverted. This is the hard-error
	// model (stuck-at cells, retention failures accumulating over time).
	Sticky
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Transient:
		return "transient"
	case Sticky:
		return "sticky"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes an Injector.
type Config struct {
	// BER is the bit-error rate: the probability that any single bit of
	// the faulted stores flips, per read (Transient) or per injection
	// round (Sticky). The realized flip count per round is
	// ⌊BER·bits + carry⌋ with the fractional residue carried to the next
	// round, so long runs average to the exact rate even when
	// BER·bits < 1.
	BER float64
	// Mode selects transient (per-read) or sticky (persistent) faults.
	Mode Mode
	// Seed drives the fault positions. Equal seeds reproduce equal fault
	// sequences.
	Seed int64
}

// Validate rejects out-of-range settings.
func (c Config) Validate() error {
	if c.BER < 0 || c.BER > 1 {
		return fmt.Errorf("fault: BER must be in [0,1], got %v", c.BER)
	}
	switch c.Mode {
	case Transient, Sticky:
	default:
		return fmt.Errorf("fault: unknown mode %d", int(c.Mode))
	}
	return nil
}

// ErrNoTarget is returned when the wrapped model materializes none of the
// stores the injector would fault (an untrained or degenerate model).
var ErrNoTarget = errors.New("fault: model has no faultable hypervector stores")
