package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file is the network half of the fault substrate: where fault.go
// models memory bit errors inside one process, NetFaults models the
// failure modes of the links between replicas (internal/repl) — message
// drop, delay, duplication, reordering, and full partition. Like the
// bit-flip injector it is fully seeded: the same NetConfig against the
// same sequence of Decide calls produces bit-identical fault decisions,
// which is what makes the replication chaos suite and
// scripts/replica_smoke.sh reproducible.

// NetConfig parameterizes a NetFaults decision source. All rates are
// independent per-message probabilities in [0,1]; a message can draw
// several faults at once (e.g. delayed and duplicated).
type NetConfig struct {
	// Drop is the probability a message is lost in flight.
	Drop float64
	// Delay is the probability a message is delayed; the magnitude is
	// uniform in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds the injected delay. Required iff Delay > 0.
	MaxDelay time.Duration
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back and swapped with
	// the next message on the same link.
	Reorder float64
	// Seed drives the decisions. Equal seeds reproduce equal decision
	// sequences for equal call sequences.
	Seed int64
}

// Validate rejects out-of-range settings.
func (c NetConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", c.Drop}, {"Delay", c.Delay}, {"Duplicate", c.Duplicate}, {"Reorder", c.Reorder}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s rate must be in [0,1], got %v", p.name, p.v)
		}
	}
	if c.Delay > 0 && c.MaxDelay <= 0 {
		return fmt.Errorf("fault: Delay rate %v needs MaxDelay > 0", c.Delay)
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("fault: MaxDelay must be >= 0, got %v", c.MaxDelay)
	}
	return nil
}

// NetDecision is the fate NetFaults assigns to one message.
type NetDecision struct {
	// Drop: the message is lost; the sender sees a transport error.
	Drop bool
	// Delay holds the injected latency (0 when not delayed).
	Delay time.Duration
	// Duplicate: the message is delivered a second time.
	Duplicate bool
	// Reorder: the message is held back and swapped with the next one on
	// the same link.
	Reorder bool
}

// NetFaults is a seeded per-message fault decision source plus a mutable
// partition set. It is safe for concurrent use; concurrency makes the
// interleaving of decisions scheduler-dependent, so tests wanting
// bit-reproducible sequences serialize their sends.
type NetFaults struct {
	mu       sync.Mutex
	cfg      NetConfig
	rng      *rand.Rand
	cutLinks map[[2]int]bool
	isolated map[int]bool
}

// NewNetFaults builds a decision source from the config.
func NewNetFaults(cfg NetConfig) (*NetFaults, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &NetFaults{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cutLinks: map[[2]int]bool{},
		isolated: map[int]bool{},
	}, nil
}

// Decide draws the fate of one message from a to b. Partitioned links
// return {Drop: true} without consuming randomness, so healing a partition
// resumes the decision sequence exactly where it left off.
func (n *NetFaults) Decide(from, to int) NetDecision {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitionedLocked(from, to) {
		return NetDecision{Drop: true}
	}
	var d NetDecision
	// Fixed draw order (drop, delay, duplicate, reorder) keeps the
	// consumed-randomness count per call constant, so decision sequences
	// only depend on the call sequence, not on which faults fired.
	drop := n.rng.Float64() < n.cfg.Drop
	delay := n.rng.Float64() < n.cfg.Delay
	var delayFor time.Duration
	if n.cfg.MaxDelay > 0 {
		delayFor = time.Duration(n.rng.Int63n(int64(n.cfg.MaxDelay))) + 1
	}
	dup := n.rng.Float64() < n.cfg.Duplicate
	reorder := n.rng.Float64() < n.cfg.Reorder
	if drop {
		return NetDecision{Drop: true}
	}
	if delay {
		d.Delay = delayFor
	}
	d.Duplicate = dup
	d.Reorder = reorder
	return d
}

// linkKey normalizes an undirected link.
func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Cut severs the undirected link between a and b.
func (n *NetFaults) Cut(a, b int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cutLinks[linkKey(a, b)] = true
}

// Isolate severs every link touching id (a full partition of that node).
func (n *NetFaults) Isolate(id int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.isolated[id] = true
}

// Heal restores the undirected link between a and b (and clears either
// endpoint's isolation, since the pair can evidently talk again).
func (n *NetFaults) Heal(a, b int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cutLinks, linkKey(a, b))
	delete(n.isolated, a)
	delete(n.isolated, b)
}

// HealAll restores every link.
func (n *NetFaults) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cutLinks = map[[2]int]bool{}
	n.isolated = map[int]bool{}
}

// Partitioned reports whether messages from a to b are currently severed.
func (n *NetFaults) Partitioned(a, b int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitionedLocked(a, b)
}

func (n *NetFaults) partitionedLocked(a, b int) bool {
	return n.isolated[a] || n.isolated[b] || n.cutLinks[linkKey(a, b)]
}
