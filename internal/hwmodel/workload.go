package hwmodel

import (
	"fmt"

	"reghd/internal/core"
	"reghd/internal/hdc"
)

// Counts is an operation-count vector indexed by hdc.Op.
type Counts = [hdc.NumOps]uint64

// add accumulates n occurrences of op into c.
func add(c *Counts, op hdc.Op, n uint64) { c[op] += n }

// addEncode charges one nonlinear encoding of an n-feature input into D
// dimensions, including the bipolar quantization (mirrors
// encoding.Nonlinear.EncodeBipolar).
func addEncode(c *Counts, n, d uint64) {
	add(c, hdc.OpFloatMul, n*d+d)
	add(c, hdc.OpFloatAdd, n*d+d)
	add(c, hdc.OpMemRead, n*d)
	add(c, hdc.OpExp, 2*d)
	add(c, hdc.OpMemWrite, d)
	add(c, hdc.OpCmp, d)
}

// addPack charges one bit-pack of a D-dimensional vector.
func addPack(c *Counts, d uint64) {
	add(c, hdc.OpCmp, d)
	add(c, hdc.OpMemRead, d)
	add(c, hdc.OpMemWrite, (d+63)/64)
}

// addDot charges one dense dot product of dimension D.
func addDot(c *Counts, d uint64) {
	add(c, hdc.OpFloatMul, d)
	add(c, hdc.OpFloatAdd, d)
	add(c, hdc.OpMemRead, 2*d)
}

// addCosine charges one cosine similarity of dimension D (dot + 2 norms).
func addCosine(c *Counts, d uint64) {
	addDot(c, d)
	for i := 0; i < 2; i++ {
		add(c, hdc.OpFloatMul, d)
		add(c, hdc.OpFloatAdd, d)
		add(c, hdc.OpFloatDiv, 1)
		add(c, hdc.OpMemRead, d)
	}
	add(c, hdc.OpFloatMul, 1)
	add(c, hdc.OpFloatDiv, 1)
}

// addHammingSim charges one Hamming similarity over D bit-packed
// dimensions.
func addHammingSim(c *Counts, d uint64) {
	w := (d + 63) / 64
	add(c, hdc.OpXor, w)
	add(c, hdc.OpPopcnt, w)
	add(c, hdc.OpIntAdd, w)
	add(c, hdc.OpMemRead, 2*w)
	add(c, hdc.OpFloatDiv, 1)
	add(c, hdc.OpFloatAdd, 1)
}

// addBinaryDenseDot charges one multiply-free dot of a packed query against
// a dense model (hdc.DotBinaryDense).
func addBinaryDenseDot(c *Counts, d uint64) {
	add(c, hdc.OpFloatAdd, d)
	add(c, hdc.OpMemRead, d+(d+63)/64)
}

// addBinaryBinaryDot charges one popcount dot of two packed vectors.
func addBinaryBinaryDot(c *Counts, d uint64) {
	w := (d + 63) / 64
	add(c, hdc.OpXor, w)
	add(c, hdc.OpPopcnt, w)
	add(c, hdc.OpIntAdd, w+1)
	add(c, hdc.OpMemRead, 2*w)
}

// addAXPY charges one scaled vector accumulation of dimension D.
func addAXPY(c *Counts, d uint64) {
	add(c, hdc.OpFloatMul, d)
	add(c, hdc.OpFloatAdd, d)
	add(c, hdc.OpMemRead, 2*d)
	add(c, hdc.OpMemWrite, d)
}

// addSoftmax charges one k-way softmax.
func addSoftmax(c *Counts, k uint64) {
	add(c, hdc.OpCmp, k)
	add(c, hdc.OpExp, k)
	add(c, hdc.OpFloatMul, 2*k+1)
	add(c, hdc.OpFloatAdd, 2*k)
	add(c, hdc.OpFloatDiv, 1)
}

// RegHDWorkload describes a RegHD training or inference run for cost
// estimation. The analytic counts mirror the instrumented kernels of
// internal/core, charging encoding once per sample per epoch (a streaming
// system re-encodes every pass).
type RegHDWorkload struct {
	// Dim is the hypervector dimensionality D.
	Dim int
	// Models is the number of cluster/model pairs k.
	Models int
	// Features is the input dimensionality n.
	Features int
	// TrainSamples is the training-set size.
	TrainSamples int
	// Epochs is the number of iterative passes.
	Epochs int
	// ClusterMode and PredictMode select the quantization configuration.
	ClusterMode core.ClusterMode
	PredictMode core.PredictMode
	// ModelSparsity is the fraction of zeroed model components
	// (SparseHD-style); hardware skips them, scaling the prediction dot
	// products by (1−sparsity). Zero means dense.
	ModelSparsity float64
}

// Validate rejects non-positive shape parameters.
func (w RegHDWorkload) Validate() error {
	if w.Dim <= 0 || w.Models <= 0 || w.Features <= 0 || w.TrainSamples <= 0 || w.Epochs <= 0 {
		return fmt.Errorf("hwmodel: RegHD workload has non-positive shape: %+v", w)
	}
	if w.ModelSparsity < 0 || w.ModelSparsity >= 1 {
		return fmt.Errorf("hwmodel: ModelSparsity must be in [0,1), got %v", w.ModelSparsity)
	}
	return nil
}

// perSampleSims charges the cluster similarity search for one sample.
func (w RegHDWorkload) perSampleSims(c *Counts) {
	if w.Models == 1 {
		return
	}
	d, k := uint64(w.Dim), uint64(w.Models)
	if w.ClusterMode == core.ClusterInteger {
		for i := uint64(0); i < k; i++ {
			addCosine(c, d)
		}
	} else {
		for i := uint64(0); i < k; i++ {
			addHammingSim(c, d)
		}
	}
	addSoftmax(c, k)
}

// perModelDot charges the prediction dot product against one model with the
// deployment kernel. Sparse models skip their zeroed components.
func (w RegHDWorkload) perModelDot(c *Counts) {
	d := uint64(float64(w.Dim) * (1 - w.ModelSparsity))
	switch w.PredictMode {
	case core.PredictFull:
		addDot(c, d)
	case core.PredictBinaryQuery:
		addBinaryDenseDot(c, d)
	case core.PredictBinaryModel:
		addBinaryDenseDot(c, d)
		add(c, hdc.OpFloatMul, 1)
	case core.PredictBinaryBoth:
		addBinaryBinaryDot(c, d)
		add(c, hdc.OpFloatMul, 1)
	}
}

// trainModelDot charges the training-time dot (always the integer model).
func (w RegHDWorkload) trainModelDot(c *Counts) {
	d := uint64(w.Dim)
	if w.PredictMode.UsesRawQuery() {
		addDot(c, d)
	} else {
		addBinaryDenseDot(c, d)
	}
}

// TrainCounts returns the operation counts of the full training run.
func (w RegHDWorkload) TrainCounts() (Counts, error) {
	if err := w.Validate(); err != nil {
		return Counts{}, err
	}
	var c Counts
	d, k := uint64(w.Dim), uint64(w.Models)
	n, f := uint64(w.TrainSamples), uint64(w.Features)
	perSample := Counts{}
	addEncode(&perSample, f, d)
	addPack(&perSample, d)
	w.perSampleSims(&perSample)
	for i := uint64(0); i < k; i++ {
		w.trainModelDot(&perSample)
	}
	if w.PredictMode.UsesRawQuery() {
		addDot(&perSample, d) // NLMS normalization
	}
	// Model updates: weighted rule updates all k models.
	for i := uint64(0); i < k; i++ {
		addAXPY(&perSample, d)
	}
	if w.Models > 1 && w.ClusterMode != core.ClusterNaiveBinary {
		add(&perSample, hdc.OpCmp, k-1) // argmax
		addAXPY(&perSample, d)          // cluster update
	}
	for op := range c {
		c[op] += perSample[op] * n * uint64(w.Epochs)
	}
	// End-of-epoch shadow refresh.
	var perEpoch Counts
	if w.ClusterMode == core.ClusterBinary {
		for i := uint64(0); i < k; i++ {
			addPack(&perEpoch, d)
		}
	}
	if w.PredictMode.UsesBinaryModel() {
		for i := uint64(0); i < k; i++ {
			addPack(&perEpoch, d)
			add(&perEpoch, hdc.OpFloatAdd, d) // L1 norm
			add(&perEpoch, hdc.OpCmp, d)
			add(&perEpoch, hdc.OpMemRead, d)
		}
		// Output calibration pass over ≤512 samples.
		calib := n
		if calib > 512 {
			calib = 512
		}
		var per Counts
		w.perSampleSims(&per)
		for i := uint64(0); i < k; i++ {
			w.perModelDot(&per)
		}
		for op := range perEpoch {
			perEpoch[op] += per[op] * calib
		}
	}
	for op := range c {
		c[op] += perEpoch[op] * uint64(w.Epochs)
	}
	return c, nil
}

// InferCounts returns the operation counts of predicting `queries` inputs.
func (w RegHDWorkload) InferCounts(queries int) (Counts, error) {
	if err := w.Validate(); err != nil {
		return Counts{}, err
	}
	if queries <= 0 {
		return Counts{}, fmt.Errorf("hwmodel: non-positive query count %d", queries)
	}
	var per Counts
	d, k := uint64(w.Dim), uint64(w.Models)
	addEncode(&per, uint64(w.Features), d)
	addPack(&per, d)
	w.perSampleSims(&per)
	for i := uint64(0); i < k; i++ {
		w.perModelDot(&per)
	}
	add(&per, hdc.OpFloatMul, k)
	add(&per, hdc.OpFloatAdd, k)
	var c Counts
	for op := range c {
		c[op] = per[op] * uint64(queries)
	}
	return c, nil
}

// DNNWorkload describes the MLP baseline for cost estimation.
type DNNWorkload struct {
	// Layers lists the layer widths including input and output,
	// e.g. {13, 64, 64, 1}.
	Layers []int
	// TrainSamples and Epochs shape the training run.
	TrainSamples int
	Epochs       int
	// BatchSize is the mini-batch size (weight updates per epoch =
	// TrainSamples/BatchSize).
	BatchSize int
}

// Validate rejects malformed workloads.
func (w DNNWorkload) Validate() error {
	if len(w.Layers) < 2 {
		return fmt.Errorf("hwmodel: DNN needs at least input and output layers, got %v", w.Layers)
	}
	for _, l := range w.Layers {
		if l <= 0 {
			return fmt.Errorf("hwmodel: non-positive layer width in %v", w.Layers)
		}
	}
	if w.TrainSamples <= 0 || w.Epochs <= 0 || w.BatchSize <= 0 {
		return fmt.Errorf("hwmodel: DNN workload has non-positive shape: %+v", w)
	}
	return nil
}

// macs returns the multiply-accumulate count of one forward pass.
func (w DNNWorkload) macs() uint64 {
	var m uint64
	for i := 0; i+1 < len(w.Layers); i++ {
		m += uint64(w.Layers[i]) * uint64(w.Layers[i+1])
	}
	return m
}

// params returns the trainable parameter count.
func (w DNNWorkload) params() uint64 {
	var p uint64
	for i := 0; i+1 < len(w.Layers); i++ {
		p += uint64(w.Layers[i])*uint64(w.Layers[i+1]) + uint64(w.Layers[i+1])
	}
	return p
}

// hiddenUnits returns the total hidden activations per forward pass.
func (w DNNWorkload) hiddenUnits() uint64 {
	var h uint64
	for i := 1; i+1 < len(w.Layers); i++ {
		h += uint64(w.Layers[i])
	}
	return h
}

// TrainCounts returns the operation counts of the full SGD training run:
// forward, backward (delta propagation + gradient accumulation ≈ 2×
// forward), and per-batch momentum updates.
func (w DNNWorkload) TrainCounts() (Counts, error) {
	if err := w.Validate(); err != nil {
		return Counts{}, err
	}
	var c Counts
	n := uint64(w.TrainSamples) * uint64(w.Epochs)
	m := w.macs()
	add(&c, hdc.OpFloatMul, 3*m*n)
	add(&c, hdc.OpFloatAdd, 3*m*n)
	add(&c, hdc.OpMemRead, 4*m*n)
	add(&c, hdc.OpMemWrite, m*n/4)
	add(&c, hdc.OpCmp, w.hiddenUnits()*2*n) // ReLU fwd + grad masks
	batches := uint64(w.Epochs) * (uint64(w.TrainSamples) + uint64(w.BatchSize) - 1) / uint64(w.BatchSize)
	p := w.params()
	add(&c, hdc.OpFloatMul, 3*p*batches) // momentum, decay, step
	add(&c, hdc.OpFloatAdd, 2*p*batches)
	add(&c, hdc.OpMemRead, 2*p*batches)
	add(&c, hdc.OpMemWrite, p*batches)
	return c, nil
}

// InferCounts returns the operation counts of `queries` forward passes.
func (w DNNWorkload) InferCounts(queries int) (Counts, error) {
	if err := w.Validate(); err != nil {
		return Counts{}, err
	}
	if queries <= 0 {
		return Counts{}, fmt.Errorf("hwmodel: non-positive query count %d", queries)
	}
	var c Counts
	n := uint64(queries)
	m := w.macs()
	add(&c, hdc.OpFloatMul, m*n)
	add(&c, hdc.OpFloatAdd, m*n)
	add(&c, hdc.OpMemRead, 2*m*n)
	add(&c, hdc.OpCmp, w.hiddenUnits()*n)
	return c, nil
}

// BaselineHDWorkload describes the classification-based HD baseline.
type BaselineHDWorkload struct {
	// Dim, Bins, Features shape the classifier.
	Dim, Bins, Features int
	// TrainSamples and Epochs shape the training run.
	TrainSamples, Epochs int
	// MistakeRate is the fraction of samples misclassified per retraining
	// pass (each mistake costs two model updates). Zero means the default
	// of 0.3.
	MistakeRate float64
}

// Validate rejects malformed workloads and fills the mistake-rate default.
func (w *BaselineHDWorkload) Validate() error {
	//lint:ignore floatcmp zero value selects the default mistake rate
	if w.MistakeRate == 0 {
		w.MistakeRate = 0.3
	}
	if w.Dim <= 0 || w.Bins < 2 || w.Features <= 0 || w.TrainSamples <= 0 || w.Epochs <= 0 {
		return fmt.Errorf("hwmodel: Baseline-HD workload has non-positive shape: %+v", *w)
	}
	if w.MistakeRate < 0 || w.MistakeRate > 1 {
		return fmt.Errorf("hwmodel: mistake rate %v out of [0,1]", w.MistakeRate)
	}
	return nil
}

// TrainCounts returns the operation counts of the full training run:
// encoding, the classify-against-every-bin search each pass, and the
// add/subtract updates on mistakes.
func (w BaselineHDWorkload) TrainCounts() (Counts, error) {
	if err := w.Validate(); err != nil {
		return Counts{}, err
	}
	var c Counts
	d := uint64(w.Dim)
	n := uint64(w.TrainSamples)
	// Encode once per sample per epoch (streaming) plus the bundling pass.
	var per Counts
	addEncode(&per, uint64(w.Features), d)
	for b := 0; b < w.Bins; b++ {
		addCosine(&per, d)
	}
	add(&per, hdc.OpCmp, uint64(w.Bins-1))
	updates := 2 * w.MistakeRate // two AXPYs per mistake on average
	add(&per, hdc.OpFloatMul, uint64(updates*float64(d)))
	add(&per, hdc.OpFloatAdd, uint64(updates*float64(d)))
	add(&per, hdc.OpMemRead, uint64(2*updates*float64(d)))
	add(&per, hdc.OpMemWrite, uint64(updates*float64(d)))
	for op := range c {
		c[op] = per[op] * n * uint64(w.Epochs)
	}
	return c, nil
}

// InferCounts returns the operation counts of `queries` classifications.
func (w BaselineHDWorkload) InferCounts(queries int) (Counts, error) {
	if err := w.Validate(); err != nil {
		return Counts{}, err
	}
	if queries <= 0 {
		return Counts{}, fmt.Errorf("hwmodel: non-positive query count %d", queries)
	}
	var per Counts
	d := uint64(w.Dim)
	addEncode(&per, uint64(w.Features), d)
	for b := 0; b < w.Bins; b++ {
		addCosine(&per, d)
	}
	add(&per, hdc.OpCmp, uint64(w.Bins-1))
	var c Counts
	for op := range c {
		c[op] = per[op] * uint64(queries)
	}
	return c, nil
}
