package hwmodel

import (
	"math/rand"
	"testing"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// TestAnalyticMatchesInstrumented ties the analytic workload model to the
// real implementation: a single training epoch's measured operation counts
// must agree with the analytic counts within tolerance on the dominant
// operation classes. (The analytic model charges encoding once per epoch;
// the implementation encodes once per run, so the comparison uses one
// epoch.)
func TestAnalyticMatchesInstrumented(t *testing.T) {
	const (
		dim     = 512
		k       = 4
		feats   = 6
		samples = 64
	)
	rng := rand.New(rand.NewSource(1))
	train := &dataset.Dataset{X: make([][]float64, samples), Y: make([]float64, samples)}
	for i := range train.X {
		x := make([]float64, feats)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		train.X[i] = x
		train.Y[i] = rng.NormFloat64()
	}
	for _, tc := range []struct {
		cm core.ClusterMode
		pm core.PredictMode
	}{
		{core.ClusterInteger, core.PredictBinaryQuery},
		{core.ClusterBinary, core.PredictBinaryQuery},
		{core.ClusterBinary, core.PredictBinaryBoth},
		{core.ClusterInteger, core.PredictFull},
	} {
		enc, err := encoding.NewNonlinear(rand.New(rand.NewSource(2)), feats, dim)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{Models: k, Epochs: 1, Tol: 1e-12, Patience: 1000, Seed: 3, ClusterMode: tc.cm, PredictMode: tc.pm}
		m, err := core.New(enc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.TrainCounter = &hdc.Counter{}
		if _, err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		measured := m.TrainCounter.Snapshot()

		w := RegHDWorkload{Dim: dim, Models: k, Features: feats, TrainSamples: samples, Epochs: 1, ClusterMode: tc.cm, PredictMode: tc.pm}
		analytic, err := w.TrainCounts()
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []hdc.Op{hdc.OpFloatMul, hdc.OpFloatAdd, hdc.OpExp, hdc.OpPopcnt, hdc.OpCmp} {
			a, b := float64(analytic[op]), float64(measured[op])
			if a == 0 && b == 0 {
				continue
			}
			ratio := a / b
			if b == 0 || ratio < 0.6 || ratio > 1.7 {
				t.Errorf("%v/%v: %v analytic %v vs measured %v (ratio %.2f)", tc.cm, tc.pm, op, analytic[op], measured[op], ratio)
			}
		}
	}
}
