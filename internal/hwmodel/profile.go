// Package hwmodel is the analytical hardware cost model that stands in for
// the paper's Kintex-7 FPGA and Raspberry Pi measurements. It maps
// primitive-operation counts (the hdc.Counter classes) to latency and
// energy on a hardware profile, and provides analytic operation-count
// builders for the RegHD, DNN, and Baseline-HD workloads.
//
// The experiments that consume this package report ratios (speedup, energy
// efficiency) between algorithm variants on the same profile. Ratios are
// driven by the operation mix — Hamming popcounts vs float
// multiply-accumulates, number of models, dimensionality — which the counts
// capture exactly; the per-op constants only anchor the absolute scale.
// Per-op energies follow Horowitz's ISSCC'14 figures (45 nm, scaled), and
// issue widths reflect the parallelism the paper's targets offer: wide
// bit-level parallelism on the FPGA fabric, narrow superscalar issue on the
// ARM Cortex-A53.
package hwmodel

import (
	"fmt"

	"reghd/internal/hdc"
)

// Profile describes a hardware target: per-operation energy, how many
// operations of each class retire per cycle, clock rate, and static power.
type Profile struct {
	// Name identifies the target in reports.
	Name string
	// ClockHz is the clock frequency.
	ClockHz float64
	// EnergyPJ is the dynamic energy per operation, in picojoules.
	EnergyPJ [hdc.NumOps]float64
	// IssueWidth is the number of operations of each class that can retire
	// per cycle (lanes × pipelining).
	IssueWidth [hdc.NumOps]float64
	// StaticWatts is the constant power drawn while the workload runs.
	StaticWatts float64
}

// Validate rejects profiles with non-positive widths or clock.
func (p *Profile) Validate() error {
	if p.ClockHz <= 0 {
		return fmt.Errorf("hwmodel: profile %q has non-positive clock", p.Name)
	}
	for op, w := range p.IssueWidth {
		if w <= 0 {
			return fmt.Errorf("hwmodel: profile %q has non-positive issue width for %v", p.Name, hdc.Op(op))
		}
	}
	for op, e := range p.EnergyPJ {
		if e < 0 {
			return fmt.Errorf("hwmodel: profile %q has negative energy for %v", p.Name, hdc.Op(op))
		}
	}
	return nil
}

// FPGA returns a Kintex-7-class profile: 200 MHz fabric clock, hundreds of
// parallel LUT lanes for bitwise/popcount/integer work, a few hundred DSP
// slices for float MACs, and expensive iterative transcendentals.
func FPGA() Profile {
	p := Profile{Name: "fpga-kintex7", ClockHz: 200e6, StaticWatts: 0.8}
	set := func(op hdc.Op, pj, width float64) {
		p.EnergyPJ[op] = pj
		p.IssueWidth[op] = width
	}
	set(hdc.OpIntAdd, 0.1, 512)
	set(hdc.OpIntMul, 3.0, 128)
	set(hdc.OpFloatAdd, 1.0, 128)
	set(hdc.OpFloatMul, 4.0, 128)
	set(hdc.OpFloatDiv, 15.0, 8)
	set(hdc.OpPopcnt, 0.4, 256) // 64-bit popcount trees in LUTs
	set(hdc.OpXor, 0.05, 512)
	set(hdc.OpCmp, 0.1, 256)
	// Trigonometric encodings on FPGA fabric are table lookups into BRAM
	// (the phase is quantized, not evaluated by CORDIC), so an "exp" op
	// costs about one memory read and parallelizes across BRAM ports.
	set(hdc.OpExp, 2.0, 64)
	set(hdc.OpMemRead, 5.0, 64)
	set(hdc.OpMemWrite, 5.0, 64)
	return p
}

// ARM returns a Raspberry Pi 3B+-class profile: Cortex-A53 at 1.4 GHz,
// narrow dual-issue pipelines, cheap scalar ops but little parallelism,
// and library-call transcendentals.
func ARM() Profile {
	p := Profile{Name: "arm-cortex-a53", ClockHz: 1.4e9, StaticWatts: 1.5}
	set := func(op hdc.Op, pj, width float64) {
		p.EnergyPJ[op] = pj
		p.IssueWidth[op] = width
	}
	set(hdc.OpIntAdd, 0.2, 4) // NEON 4-lane integer
	set(hdc.OpIntMul, 1.5, 2)
	set(hdc.OpFloatAdd, 1.2, 2)
	set(hdc.OpFloatMul, 2.0, 2)
	set(hdc.OpFloatDiv, 8.0, 0.25)
	set(hdc.OpPopcnt, 0.5, 2) // NEON VCNT
	set(hdc.OpXor, 0.2, 4)
	set(hdc.OpCmp, 0.2, 2)
	set(hdc.OpExp, 30.0, 0.05) // libm call, ≈20 cycles
	set(hdc.OpMemRead, 8.0, 2)
	set(hdc.OpMemWrite, 8.0, 2)
	return p
}

// Cost is the estimated execution cost of a workload on a profile.
type Cost struct {
	// Seconds is the estimated runtime.
	Seconds float64
	// Joules is the estimated total energy (dynamic + static).
	Joules float64
}

// EnergyEfficiency returns work-per-joule relative to another cost of the
// same workload: other.Joules / c.Joules.
func (c Cost) EnergyEfficiency(other Cost) float64 { return other.Joules / c.Joules }

// Speedup returns other.Seconds / c.Seconds.
func (c Cost) Speedup(other Cost) float64 { return other.Seconds / c.Seconds }

// Estimate converts operation counts into runtime and energy on profile p.
// Cycles accumulate per operation class (count / issue width); energy is
// the per-op dynamic energy plus static power over the runtime.
func Estimate(counts [hdc.NumOps]uint64, p Profile) (Cost, error) {
	if err := p.Validate(); err != nil {
		return Cost{}, err
	}
	var cycles, dynamicPJ float64
	for op, n := range counts {
		if n == 0 {
			continue
		}
		cycles += float64(n) / p.IssueWidth[op]
		dynamicPJ += float64(n) * p.EnergyPJ[op]
	}
	seconds := cycles / p.ClockHz
	return Cost{
		Seconds: seconds,
		Joules:  dynamicPJ*1e-12 + seconds*p.StaticWatts,
	}, nil
}

// EstimateCounter is Estimate over a live hdc.Counter snapshot.
func EstimateCounter(c *hdc.Counter, p Profile) (Cost, error) {
	return Estimate(c.Snapshot(), p)
}
