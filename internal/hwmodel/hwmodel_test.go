package hwmodel

import (
	"math"
	"testing"

	"reghd/internal/core"
	"reghd/internal/hdc"
)

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{FPGA(), ARM()} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	p := FPGA()
	p.ClockHz = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero clock accepted")
	}
	p = FPGA()
	p.IssueWidth[hdc.OpPopcnt] = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero width accepted")
	}
	p = FPGA()
	p.EnergyPJ[hdc.OpXor] = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative energy accepted")
	}
}

func TestEstimateScalesLinearly(t *testing.T) {
	var c1, c2 Counts
	c1[hdc.OpFloatMul] = 1000
	c2[hdc.OpFloatMul] = 2000
	p := FPGA()
	p.StaticWatts = 0 // isolate dynamic scaling
	a, err := Estimate(c1, p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Estimate(c2, p)
	if math.Abs(b.Seconds/a.Seconds-2) > 1e-9 || math.Abs(b.Joules/a.Joules-2) > 1e-9 {
		t.Fatalf("estimate not linear: %+v vs %+v", a, b)
	}
}

func TestEstimateStaticPower(t *testing.T) {
	var c Counts
	c[hdc.OpIntAdd] = 1 << 20
	p := FPGA()
	withStatic, _ := Estimate(c, p)
	p.StaticWatts = 0
	without, _ := Estimate(c, p)
	if withStatic.Joules <= without.Joules {
		t.Fatal("static power not accounted")
	}
	if withStatic.Seconds != without.Seconds {
		t.Fatal("static power changed runtime")
	}
}

func TestSpeedupEfficiencyHelpers(t *testing.T) {
	a := Cost{Seconds: 1, Joules: 2}
	b := Cost{Seconds: 4, Joules: 10}
	if a.Speedup(b) != 4 || a.EnergyEfficiency(b) != 5 {
		t.Fatal("ratio helpers wrong")
	}
}

func TestRegHDWorkloadValidation(t *testing.T) {
	bad := RegHDWorkload{}
	if _, err := bad.TrainCounts(); err == nil {
		t.Fatal("empty workload accepted")
	}
	w := RegHDWorkload{Dim: 1000, Models: 8, Features: 10, TrainSamples: 100, Epochs: 5}
	if _, err := w.InferCounts(0); err == nil {
		t.Fatal("zero queries accepted")
	}
}

func TestRegHDMoreModelsCostMore(t *testing.T) {
	base := RegHDWorkload{Dim: 2000, Models: 2, Features: 10, TrainSamples: 500, Epochs: 10}
	big := base
	big.Models = 32
	cb, err := base.TrainCounts()
	if err != nil {
		t.Fatal(err)
	}
	cg, _ := big.TrainCounts()
	costB, _ := Estimate(cb, FPGA())
	costG, _ := Estimate(cg, FPGA())
	ratio := costG.Seconds / costB.Seconds
	// Paper Fig. 8: 32-model RegHD is several times slower than 2-model
	// (2-model is 4.9× faster than 32-model).
	if ratio < 2 || ratio > 20 {
		t.Fatalf("32 vs 2 models time ratio %v outside plausible range", ratio)
	}
}

func TestQuantizedClusterFaster(t *testing.T) {
	intw := RegHDWorkload{Dim: 4000, Models: 8, Features: 10, TrainSamples: 1000, Epochs: 10, ClusterMode: core.ClusterInteger, PredictMode: core.PredictBinaryQuery}
	binw := intw
	binw.ClusterMode = core.ClusterBinary
	ci, err := intw.TrainCounts()
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := binw.TrainCounts()
	costI, _ := Estimate(ci, FPGA())
	costB, _ := Estimate(cb, FPGA())
	speedup := costB.Speedup(costI)
	// Paper Fig. 9: cluster quantization gives ≈1.9× faster training.
	if speedup < 1.2 || speedup > 4 {
		t.Fatalf("cluster quantization speedup %v outside plausible range", speedup)
	}
	eff := costB.EnergyEfficiency(costI)
	if eff < 1.2 {
		t.Fatalf("cluster quantization energy efficiency %v too low", eff)
	}
}

func TestBinaryBothFastestInference(t *testing.T) {
	mk := func(pm core.PredictMode) Cost {
		w := RegHDWorkload{Dim: 4000, Models: 8, Features: 10, TrainSamples: 1000, Epochs: 10, ClusterMode: core.ClusterBinary, PredictMode: pm}
		c, err := w.InferCounts(1000)
		if err != nil {
			t.Fatal(err)
		}
		cost, _ := Estimate(c, FPGA())
		return cost
	}
	full := mk(core.PredictFull)
	bq := mk(core.PredictBinaryQuery)
	bb := mk(core.PredictBinaryBoth)
	if !(bb.Seconds < bq.Seconds && bq.Seconds < full.Seconds) {
		t.Fatalf("inference time ordering wrong: full %v, bq %v, bb %v", full.Seconds, bq.Seconds, bb.Seconds)
	}
}

func TestDNNWorkload(t *testing.T) {
	w := DNNWorkload{Layers: []int{13, 64, 64, 1}, TrainSamples: 500, Epochs: 50, BatchSize: 32}
	tc, err := w.TrainCounts()
	if err != nil {
		t.Fatal(err)
	}
	ic, err := w.InferCounts(500)
	if err != nil {
		t.Fatal(err)
	}
	costT, _ := Estimate(tc, FPGA())
	costI, _ := Estimate(ic, FPGA())
	if costT.Seconds <= costI.Seconds {
		t.Fatal("training should cost more than one inference pass")
	}
	bad := DNNWorkload{Layers: []int{5}}
	if _, err := bad.TrainCounts(); err == nil {
		t.Fatal("single-layer DNN accepted")
	}
	bad2 := DNNWorkload{Layers: []int{5, 0, 1}, TrainSamples: 1, Epochs: 1, BatchSize: 1}
	if _, err := bad2.TrainCounts(); err == nil {
		t.Fatal("zero-width layer accepted")
	}
	if _, err := w.InferCounts(-1); err == nil {
		t.Fatal("negative queries accepted")
	}
}

func TestBaselineHDWorkload(t *testing.T) {
	w := BaselineHDWorkload{Dim: 4000, Bins: 64, Features: 10, TrainSamples: 500, Epochs: 20}
	tc, err := w.TrainCounts()
	if err != nil {
		t.Fatal(err)
	}
	if tc[hdc.OpFloatMul] == 0 {
		t.Fatal("no float work counted")
	}
	if _, err := w.InferCounts(10); err != nil {
		t.Fatal(err)
	}
	bad := BaselineHDWorkload{Dim: 100, Bins: 1, Features: 1, TrainSamples: 1, Epochs: 1}
	if _, err := bad.TrainCounts(); err == nil {
		t.Fatal("single bin accepted")
	}
	bad2 := BaselineHDWorkload{Dim: 100, Bins: 4, Features: 1, TrainSamples: 1, Epochs: 1, MistakeRate: 2}
	if _, err := bad2.TrainCounts(); err == nil {
		t.Fatal("mistake rate 2 accepted")
	}
	if _, err := w.InferCounts(0); err == nil {
		t.Fatal("zero queries accepted")
	}
}

func TestDimensionalityScalesCost(t *testing.T) {
	// Table 2: halving D roughly halves cost.
	mk := func(d int) Cost {
		w := RegHDWorkload{Dim: d, Models: 8, Features: 10, TrainSamples: 1000, Epochs: 10, ClusterMode: core.ClusterBinary, PredictMode: core.PredictBinaryQuery}
		c, err := w.InferCounts(1000)
		if err != nil {
			t.Fatal(err)
		}
		cost, _ := Estimate(c, FPGA())
		return cost
	}
	big := mk(4000)
	small := mk(1000)
	ratio := small.Speedup(big) // big.Seconds / small.Seconds… careful: Speedup(other)=other/self
	ratio = big.Seconds / small.Seconds
	if ratio < 2.5 || ratio > 5 {
		t.Fatalf("4k/1k inference time ratio %v, want ≈4", ratio)
	}
}
