// Package dtree implements the decision-tree baseline of the paper's
// Table 1: a CART regression tree grown by greedy variance reduction with
// depth, sample-count, and improvement stopping rules.
package dtree

import (
	"errors"
	"fmt"
	"sort"

	"reghd/internal/dataset"
)

// Config holds the tree-growing hyper-parameters.
type Config struct {
	// MaxDepth caps tree depth (root is depth 0). Zero means the default.
	MaxDepth int
	// MinSamplesSplit is the minimum samples a node needs to be split.
	MinSamplesSplit int
	// MinSamplesLeaf is the minimum samples each child must keep.
	MinSamplesLeaf int
	// MinImpurityDecrease is the minimum total variance reduction a split
	// must achieve.
	MinImpurityDecrease float64
}

// DefaultConfig matches the grid-search center used in the evaluation.
func DefaultConfig() Config {
	return Config{MaxDepth: 8, MinSamplesSplit: 8, MinSamplesLeaf: 4}
}

// Validate fills defaults and rejects invalid settings.
func (c *Config) Validate() error {
	if c.MaxDepth == 0 {
		c.MaxDepth = 8
	}
	if c.MinSamplesSplit == 0 {
		c.MinSamplesSplit = 8
	}
	if c.MinSamplesLeaf == 0 {
		c.MinSamplesLeaf = 4
	}
	switch {
	case c.MaxDepth < 0:
		return errors.New("dtree: negative MaxDepth")
	case c.MinSamplesSplit < 2:
		return fmt.Errorf("dtree: MinSamplesSplit must be >= 2, got %d", c.MinSamplesSplit)
	case c.MinSamplesLeaf < 1:
		return fmt.Errorf("dtree: MinSamplesLeaf must be >= 1, got %d", c.MinSamplesLeaf)
	case c.MinImpurityDecrease < 0:
		return errors.New("dtree: negative MinImpurityDecrease")
	}
	return nil
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	value       float64 // leaf prediction (mean target)
	left, right *node
}

// Tree is the trained CART regressor.
type Tree struct {
	cfg     Config
	root    *node
	feats   int
	nodes   int
	trained bool
}

// New constructs an untrained tree.
func New(cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tree{cfg: cfg}, nil
}

// Name implements learner.Regressor.
func (t *Tree) Name() string { return "dtree" }

// Nodes returns the number of nodes in the trained tree.
func (t *Tree) Nodes() int { return t.nodes }

// Depth returns the depth of the trained tree (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.feature == -1 {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Fit grows the tree on the training data.
func (t *Tree) Fit(train *dataset.Dataset) error {
	if err := train.Validate(); err != nil {
		return err
	}
	t.feats = train.Features()
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	t.nodes = 0
	t.root = t.grow(train, idx, 0)
	t.trained = true
	return nil
}

// stats holds the sufficient statistics of a sample set for variance math.
type stats struct {
	n          int
	sum, sumSq float64
}

func (s *stats) add(y float64)    { s.n++; s.sum += y; s.sumSq += y * y }
func (s *stats) remove(y float64) { s.n--; s.sum -= y; s.sumSq -= y * y }

// sse returns the sum of squared errors around the mean (n · variance).
func (s *stats) sse() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sumSq - s.sum*s.sum/float64(s.n)
}

func (s *stats) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// grow recursively builds the subtree over the samples at idx.
func (t *Tree) grow(d *dataset.Dataset, idx []int, dep int) *node {
	t.nodes++
	var total stats
	for _, i := range idx {
		total.add(d.Y[i])
	}
	leaf := &node{feature: -1, value: total.mean()}
	if dep >= t.cfg.MaxDepth || len(idx) < t.cfg.MinSamplesSplit || total.sse() <= 0 {
		return leaf
	}

	bestGain := t.cfg.MinImpurityDecrease
	bestFeat, bestThresh := -1, 0.0
	order := make([]int, len(idx))
	for f := 0; f < t.feats; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		var left stats
		right := total
		for pos := 0; pos < len(order)-1; pos++ {
			y := d.Y[order[pos]]
			left.add(y)
			right.remove(y)
			xCur := d.X[order[pos]][f]
			xNext := d.X[order[pos+1]][f]
			//lint:ignore floatcmp sorted adjacent duplicates: a split threshold between equal values is undefined, and the values are untransformed inputs
			if xCur == xNext {
				continue // cannot split between equal values
			}
			nl, nr := pos+1, len(order)-pos-1
			if nl < t.cfg.MinSamplesLeaf || nr < t.cfg.MinSamplesLeaf {
				continue
			}
			gain := total.sse() - left.sse() - right.sse()
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (xCur + xNext) / 2
			}
		}
	}
	if bestFeat == -1 {
		return leaf
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if d.X[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThresh,
		value:     total.mean(),
		left:      t.grow(d, leftIdx, dep+1),
		right:     t.grow(d, rightIdx, dep+1),
	}
}

// ErrNotTrained is returned by Predict before Fit.
var ErrNotTrained = errors.New("dtree: tree has not been trained")

// Predict walks the tree to a leaf.
func (t *Tree) Predict(x []float64) (float64, error) {
	if !t.trained {
		return 0, ErrNotTrained
	}
	if len(x) != t.feats {
		return 0, fmt.Errorf("dtree: input has %d features, tree expects %d", len(x), t.feats)
	}
	n := t.root
	for n.feature != -1 {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value, nil
}
