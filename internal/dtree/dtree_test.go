package dtree

import (
	"math"
	"math/rand"
	"testing"

	"reghd/internal/dataset"
	"reghd/internal/learner"
)

var _ learner.Regressor = (*Tree)(nil)

func makeStep(rng *rand.Rand, n int) *dataset.Dataset {
	// Piecewise-constant target — the ideal case for a tree.
	d := &dataset.Dataset{Name: "step", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		y := -1.0
		if x > 0.5 {
			y = 2
		} else if x > -1 {
			y = 0.5
		}
		d.X[i] = []float64{x, rng.NormFloat64()} // second feature is noise
		d.Y[i] = y
	}
	return d
}

func makeSmooth(rng *rand.Rand, n int) *dataset.Dataset {
	d := &dataset.Dataset{Name: "smooth", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		d.X[i] = []float64{a, b}
		d.Y[i] = a*a + b + 0.05*rng.NormFloat64()
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxDepth: -1},
		{MinSamplesSplit: 1},
		{MinSamplesLeaf: -1},
		{MinImpurityDecrease: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MaxDepth == 0 || c.MinSamplesSplit == 0 || c.MinSamplesLeaf == 0 {
		t.Fatal("defaults not filled")
	}
}

func TestLearnsStepFunction(t *testing.T) {
	all := makeStep(rand.New(rand.NewSource(1)), 600)
	train := all.Subset(seq(0, 450))
	test := all.Subset(seq(450, 600))
	tr, _ := New(DefaultConfig())
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, err := learner.MSE(tr, test)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.01 {
		t.Fatalf("step-function MSE %v, tree should fit it almost exactly", mse)
	}
}

func TestLearnsSmoothApproximately(t *testing.T) {
	all := makeSmooth(rand.New(rand.NewSource(2)), 1200)
	train := all.Subset(seq(0, 900))
	test := all.Subset(seq(900, 1200))
	tr, _ := New(DefaultConfig())
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse, _ := learner.MSE(tr, test)
	// Target variance ≈ 3; the tree should capture most structure.
	if mse > 1 {
		t.Fatalf("smooth MSE %v too high", mse)
	}
}

func TestDepthLimitRespected(t *testing.T) {
	all := makeSmooth(rand.New(rand.NewSource(3)), 500)
	cfg := DefaultConfig()
	cfg.MaxDepth = 3
	tr, _ := New(cfg)
	if err := tr.Fit(all); err != nil {
		t.Fatal(err)
	}
	if got := tr.Depth(); got > 3 {
		t.Fatalf("depth %d exceeds limit 3", got)
	}
	if tr.Nodes() == 0 {
		t.Fatal("no nodes recorded")
	}
}

func TestDepthZeroIsStump(t *testing.T) {
	all := makeStep(rand.New(rand.NewSource(4)), 100)
	cfg := DefaultConfig()
	cfg.MaxDepth = 1
	tr, _ := New(cfg)
	if err := tr.Fit(all); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Fatalf("stump depth %d", tr.Depth())
	}
}

func TestConstantTargetGivesLeaf(t *testing.T) {
	d := &dataset.Dataset{X: [][]float64{{1}, {2}, {3}, {4}}, Y: []float64{5, 5, 5, 5}}
	tr, _ := New(DefaultConfig())
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	y, err := tr.Predict([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if y != 5 {
		t.Fatalf("constant prediction %v, want 5", y)
	}
	if tr.Depth() != 0 {
		t.Fatal("constant target should be a lone leaf")
	}
}

func TestMinSamplesLeafRespected(t *testing.T) {
	// With MinSamplesLeaf equal to half the data, at most one split fits.
	all := makeStep(rand.New(rand.NewSource(5)), 40)
	cfg := DefaultConfig()
	cfg.MinSamplesLeaf = 20
	tr, _ := New(cfg)
	if err := tr.Fit(all); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Fatalf("depth %d with MinSamplesLeaf=n/2", tr.Depth())
	}
}

func TestPredictBeforeFit(t *testing.T) {
	tr, _ := New(DefaultConfig())
	if _, err := tr.Predict([]float64{1}); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
}

func TestPredictChecksLength(t *testing.T) {
	all := makeStep(rand.New(rand.NewSource(6)), 50)
	tr, _ := New(DefaultConfig())
	if err := tr.Fit(all); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Predict([]float64{1, 2, 3}); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

func TestFitRejectsBadData(t *testing.T) {
	tr, _ := New(DefaultConfig())
	if err := tr.Fit(&dataset.Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDeterministic(t *testing.T) {
	all := makeSmooth(rand.New(rand.NewSource(7)), 300)
	run := func() float64 {
		tr, _ := New(DefaultConfig())
		if err := tr.Fit(all); err != nil {
			t.Fatal(err)
		}
		y, _ := tr.Predict(all.X[0])
		return y
	}
	if run() != run() {
		t.Fatal("tree growth not deterministic")
	}
}

func TestPredictionsAreTrainMeans(t *testing.T) {
	// Every prediction must be within the target range (tree predicts
	// means of training subsets).
	all := makeSmooth(rand.New(rand.NewSource(8)), 400)
	tr, _ := New(DefaultConfig())
	if err := tr.Fit(all); err != nil {
		t.Fatal(err)
	}
	lo, hi := all.TargetRange()
	for i := 0; i < 50; i++ {
		y, _ := tr.Predict(all.X[i])
		if y < lo-1e-9 || y > hi+1e-9 {
			t.Fatalf("prediction %v outside target range [%v,%v]", y, lo, hi)
		}
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatal("NaN in target range")
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
