// Package tune implements the hyper-parameter selection protocol of the
// paper's evaluation ("we exploit the common practice of the grid search to
// identify the best hyper-parameters for each model"): k-fold
// cross-validated grid search over arbitrary learner candidates.
package tune

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"reghd/internal/dataset"
	"reghd/internal/learner"
)

// Candidate is one point of the grid: a named learner factory. The factory
// is called once per fold so every evaluation starts untrained.
type Candidate struct {
	// Name identifies the hyper-parameter combination, e.g. "k=8 lr=0.1".
	Name string
	// Make constructs a fresh untrained learner.
	Make func() (learner.Regressor, error)
}

// Result summarizes a grid search.
type Result struct {
	// Scores maps candidate name to mean validation MSE across folds.
	Scores map[string]float64
	// Stds maps candidate name to the across-fold standard deviation.
	Stds map[string]float64
	// Order lists candidate names sorted by ascending score.
	Order []string
	// Best is the lowest-score candidate name.
	Best string
	// Folds is the number of folds used.
	Folds int
}

// GridSearch evaluates every candidate with k-fold cross-validation
// (features and target standardized per fold on the training part, exactly
// like the experiment pipeline) and returns the per-candidate scores.
func GridSearch(d *dataset.Dataset, folds int, seed int64, candidates []Candidate) (*Result, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("tune: no candidates")
	}
	seen := make(map[string]bool, len(candidates))
	for _, c := range candidates {
		if c.Name == "" || c.Make == nil {
			return nil, fmt.Errorf("tune: candidate with empty name or nil factory")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("tune: duplicate candidate %q", c.Name)
		}
		seen[c.Name] = true
	}
	rng := rand.New(rand.NewSource(seed))
	splits, err := dataset.KFold(d, folds, rng)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Scores: make(map[string]float64, len(candidates)),
		Stds:   make(map[string]float64, len(candidates)),
		Folds:  folds,
	}
	for _, c := range candidates {
		var scores []float64
		for fi, fold := range splits {
			r, err := c.Make()
			if err != nil {
				return nil, fmt.Errorf("tune: building %q: %w", c.Name, err)
			}
			mse, err := evalFold(r, fold)
			if err != nil {
				return nil, fmt.Errorf("tune: %q fold %d: %w", c.Name, fi, err)
			}
			scores = append(scores, mse)
		}
		var mean float64
		for _, s := range scores {
			mean += s
		}
		mean /= float64(len(scores))
		var variance float64
		for _, s := range scores {
			variance += (s - mean) * (s - mean)
		}
		res.Scores[c.Name] = mean
		res.Stds[c.Name] = math.Sqrt(variance / float64(len(scores)))
	}
	for name := range res.Scores {
		res.Order = append(res.Order, name)
	}
	sort.Slice(res.Order, func(i, j int) bool {
		return res.Scores[res.Order[i]] < res.Scores[res.Order[j]]
	})
	res.Best = res.Order[0]
	return res, nil
}

// evalFold standardizes on the fold's training part, fits, and scores the
// validation part in original units.
func evalFold(r learner.Regressor, fold dataset.Fold) (float64, error) {
	sc, err := dataset.FitScaler(fold.Train, true)
	if err != nil {
		return 0, err
	}
	trainS, err := sc.Transform(fold.Train)
	if err != nil {
		return 0, err
	}
	valS, err := sc.Transform(fold.Val)
	if err != nil {
		return 0, err
	}
	if err := r.Fit(trainS); err != nil {
		return 0, err
	}
	preds, err := learner.PredictBatch(r, valS.X)
	if err != nil {
		return 0, err
	}
	for i := range preds {
		preds[i] = sc.InverseY(preds[i])
	}
	return dataset.MSE(preds, fold.Val.Y)
}

// Render prints the leaderboard.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid search (%d-fold CV, MSE ± std)\n", r.Folds)
	for i, name := range r.Order {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s %-24s %12.4f ± %.4f\n", marker, name, r.Scores[name], r.Stds[name])
	}
	return b.String()
}
