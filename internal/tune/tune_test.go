package tune

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"reghd/internal/dataset"
	"reghd/internal/learner"
	"reghd/internal/linreg"
)

func makeLinear(rng *rand.Rand, n int) *dataset.Dataset {
	d := &dataset.Dataset{Name: "lin", X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		d.X[i] = []float64{a, b}
		d.Y[i] = 2*a - b + 0.05*rng.NormFloat64()
	}
	return d
}

// meanLearner ignores inputs and predicts the training mean.
type meanLearner struct{ mean float64 }

func (m *meanLearner) Name() string { return "mean" }
func (m *meanLearner) Fit(d *dataset.Dataset) error {
	m.mean = 0
	for _, y := range d.Y {
		m.mean += y
	}
	m.mean /= float64(d.Len())
	return nil
}
func (m *meanLearner) Predict([]float64) (float64, error) { return m.mean, nil }

func TestKFoldPartitions(t *testing.T) {
	d := makeLinear(rand.New(rand.NewSource(1)), 53)
	folds, err := dataset.KFold(d, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	totalVal := 0
	for _, f := range folds {
		totalVal += f.Val.Len()
		if f.Train.Len()+f.Val.Len() != d.Len() {
			t.Fatal("fold does not partition the dataset")
		}
	}
	if totalVal != d.Len() {
		t.Fatalf("validation parts cover %d of %d samples", totalVal, d.Len())
	}
}

func TestKFoldValidation(t *testing.T) {
	d := makeLinear(rand.New(rand.NewSource(3)), 10)
	rng := rand.New(rand.NewSource(4))
	if _, err := dataset.KFold(d, 1, rng); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := dataset.KFold(d, 11, rng); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := dataset.KFold(&dataset.Dataset{}, 2, rng); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestGridSearchPicksBetterModel(t *testing.T) {
	d := makeLinear(rand.New(rand.NewSource(5)), 200)
	res, err := GridSearch(d, 4, 6, []Candidate{
		{Name: "ridge", Make: func() (learner.Regressor, error) { return linreg.New(linreg.Config{Lambda: 0.01}) }},
		{Name: "mean", Make: func() (learner.Regressor, error) { return &meanLearner{}, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != "ridge" {
		t.Fatalf("best = %q, want ridge (scores %v)", res.Best, res.Scores)
	}
	if res.Scores["ridge"] >= res.Scores["mean"] {
		t.Fatal("ridge should score lower MSE than the mean predictor")
	}
	if res.Order[0] != "ridge" {
		t.Fatalf("order = %v", res.Order)
	}
	if !strings.Contains(res.Render(), "* ridge") {
		t.Fatalf("render should mark the winner:\n%s", res.Render())
	}
}

func TestGridSearchValidation(t *testing.T) {
	d := makeLinear(rand.New(rand.NewSource(7)), 50)
	if _, err := GridSearch(d, 3, 1, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
	if _, err := GridSearch(d, 3, 1, []Candidate{{Name: ""}}); err == nil {
		t.Fatal("unnamed candidate accepted")
	}
	dup := Candidate{Name: "x", Make: func() (learner.Regressor, error) { return &meanLearner{}, nil }}
	if _, err := GridSearch(d, 3, 1, []Candidate{dup, dup}); err == nil {
		t.Fatal("duplicate candidates accepted")
	}
	failing := Candidate{Name: "boom", Make: func() (learner.Regressor, error) { return nil, errors.New("boom") }}
	if _, err := GridSearch(d, 3, 1, []Candidate{failing}); err == nil {
		t.Fatal("factory error not propagated")
	}
}

func TestGridSearchDeterministic(t *testing.T) {
	d := makeLinear(rand.New(rand.NewSource(8)), 120)
	mk := []Candidate{
		{Name: "r1", Make: func() (learner.Regressor, error) { return linreg.New(linreg.Config{Lambda: 0.1}) }},
		{Name: "r2", Make: func() (learner.Regressor, error) { return linreg.New(linreg.Config{Lambda: 10}) }},
	}
	a, err := GridSearch(d, 3, 9, mk)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GridSearch(d, 3, 9, mk)
	for name := range a.Scores {
		if a.Scores[name] != b.Scores[name] {
			t.Fatal("grid search not deterministic")
		}
	}
}
