package reghd

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"reghd/internal/core"
)

// This file is the serving engine's hardening layer: typed request errors,
// input validation, panic containment, an admission-control gate, and the
// degraded-mode fallback. The design rule throughout is that a bad request
// — malformed input, an expired deadline, a request that trips a panic in a
// poisoned snapshot — costs exactly that one request an error, while
// sibling requests, the published snapshot, and the engine itself keep
// working. docs/ROBUSTNESS.md describes the full degradation semantics.

// ErrInvalidInput is the sentinel wrapped by every input-validation
// rejection (NaN/Inf features or targets, wrong feature count). Match with
// errors.Is to map it to a 400-class response.
var ErrInvalidInput = core.ErrInvalidInput

// ErrCorruptModel is the sentinel wrapped by LoadModel/LoadModelFile when a
// checkpoint cannot be decoded into a structurally valid model. SaveFile
// writes checkpoints atomically (temp file + rename), so seeing this means
// the bytes were damaged after the fact, not torn by a crashed writer.
var ErrCorruptModel = core.ErrCorruptModel

// ErrOverloaded is returned by prediction when the engine's bounded
// in-flight limit (SetMaxInFlight) is reached: the request was shed without
// doing any serving work. Map it to a 429-class response and retry with
// backoff.
var ErrOverloaded = errors.New("reghd: engine overloaded, request shed")

// PanicError is returned when a request panicked inside the serving path —
// typically a poisoned model state reached through Update, or corrupted
// snapshot memory. The panic is contained to the failing request: sibling
// requests, the published snapshot, and the engine keep serving.
type PanicError struct {
	// Op names the engine method that recovered the panic.
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("reghd: panic recovered in %s: %v", p.Op, p.Value)
}

// robustStats are the engine's always-on hardening counters. They are plain
// atomics recorded regardless of EnableMetrics: shedding and panic
// containment must stay observable even on engines that never opt into the
// latency instrumentation.
type robustStats struct {
	shed    atomic.Uint64
	panics  atomic.Uint64
	invalid atomic.Uint64

	degraded atomic.Bool

	inFlight    atomic.Int64
	maxInFlight atomic.Int64 // <= 0 means unlimited
}

// RobustnessMetrics is the hardened serving surface's counter block,
// reported under EngineMetrics.Robustness (metric namespace
// reghd.engine.robustness, see docs/OBSERVABILITY.md). Unlike the latency
// metrics these are recorded always, not only after EnableMetrics.
type RobustnessMetrics struct {
	// RequestsShed counts predictions rejected by the admission gate
	// without doing serving work (ErrOverloaded). Shed requests do not
	// appear in the predict/predict_batch latency digests.
	RequestsShed uint64 `json:"requests_shed"`
	// PanicsRecovered counts panics contained to a single request and
	// converted into a PanicError.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// InvalidInputs counts requests rejected by input validation
	// (ErrInvalidInput) before touching any model state.
	InvalidInputs uint64 `json:"invalid_inputs"`
	// DegradedMode reports whether the engine is serving from its last
	// known-good snapshot after a writer-path failure; a successful
	// explicit Publish or Update clears it.
	DegradedMode bool `json:"degraded_mode"`
	// InFlight is the number of predictions currently inside the admission
	// gate.
	InFlight int64 `json:"in_flight"`
	// MaxInFlight is the configured admission limit (0 = unlimited).
	MaxInFlight int64 `json:"max_in_flight"`
	// PublishSeq is the monotonically increasing sequence number of the
	// published snapshot; readers observing it never see it decrease.
	PublishSeq uint64 `json:"publish_seq"`
}

// SetMaxInFlight bounds the number of predictions (single or batch calls,
// each counting once) allowed inside the engine simultaneously; excess
// requests fail fast with ErrOverloaded instead of queueing. n <= 0 removes
// the bound. Safe to call while serving.
func (e *Engine) SetMaxInFlight(n int) {
	if n < 0 {
		n = 0
	}
	e.robust.maxInFlight.Store(int64(n))
}

// Degraded reports whether the engine is in degraded mode: a PartialFit or
// republish failed mid-stream, so reads are served from the last known-good
// snapshot and automatic republication is suspended until an explicit
// Publish or Update succeeds.
func (e *Engine) Degraded() bool { return e.robust.degraded.Load() }

// PublishSeq returns the sequence number of the currently published
// snapshot. It increases by exactly one per publication, never decreases,
// and is the torn-read canary the chaos tests assert on.
func (e *Engine) PublishSeq() uint64 { return e.snap.Load().seq }

// acquire admits one request through the in-flight gate, reporting false
// (and recording the shed) when the bound is reached. Callers that receive
// true must release.
func (e *Engine) acquire() bool {
	max := e.robust.maxInFlight.Load()
	if n := e.robust.inFlight.Add(1); max > 0 && n > max {
		e.robust.inFlight.Add(-1)
		e.robust.shed.Add(1)
		return false
	}
	return true
}

// release exits the in-flight gate.
func (e *Engine) release() { e.robust.inFlight.Add(-1) }

// recovered converts a recovered panic value into a PanicError and counts
// it. Call only with a non-nil recover() result.
func (e *Engine) recovered(op string, r any) error {
	e.robust.panics.Add(1)
	return &PanicError{Op: op, Value: r, Stack: debug.Stack()}
}

// validateRows validates every row of a batch up front, so a malformed row
// is rejected — with its index — before any serving work starts.
func (e *Engine) validateRows(xs [][]float64) error {
	for i, x := range xs {
		if err := core.ValidateRow(x, e.features); err != nil {
			e.robust.invalid.Add(1)
			return fmt.Errorf("reghd: batch row %d: %w", i, err)
		}
	}
	return nil
}

// robustness snapshots the always-on hardening counters.
func (e *Engine) robustness() RobustnessMetrics {
	return RobustnessMetrics{
		RequestsShed:    e.robust.shed.Load(),
		PanicsRecovered: e.robust.panics.Load(),
		InvalidInputs:   e.robust.invalid.Load(),
		DegradedMode:    e.robust.degraded.Load(),
		InFlight:        e.robust.inFlight.Load(),
		MaxInFlight:     e.robust.maxInFlight.Load(),
		PublishSeq:      e.snap.Load().seq,
	}
}

// setPublishFailpoint installs a hook run at the start of every snapshot
// republication (automatic or explicit Publish); a non-nil error aborts the
// republication as if the shadow refresh had failed. Test-only: the chaos
// tests use it to force mid-stream publish failures and assert the engine
// degrades to its last known-good snapshot instead of crashing.
func (e *Engine) setPublishFailpoint(fn func() error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.publishFail = fn
}
