package reghd

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestPipelineSaveLoadRoundTrip(t *testing.T) {
	all := makeData(11, 500)
	enc, _ := NewEncoder(2, 512, 12)
	cfg := DefaultConfig()
	cfg.Epochs = 10
	m, _ := NewModel(enc, cfg)
	pipe := NewPipeline(m)
	if _, err := pipe.Fit(all); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		want, err := pipe.Predict(all.X[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Predict(all.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("row %d: %v vs %v after round trip", i, want, got)
		}
	}
}

func TestPipelineSaveLoadFile(t *testing.T) {
	all := makeData(13, 300)
	enc, _ := NewEncoder(2, 256, 14)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m, _ := NewModel(enc, cfg)
	pipe := NewPipeline(m)
	if _, err := pipe.Fit(all); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pipe.gob")
	if err := pipe.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPipelineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pipe.Predict(all.X[0])
	b, _ := back.Predict(all.X[0])
	if a != b {
		t.Fatal("file round trip changed predictions")
	}
	if _, err := LoadPipelineFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPipelineSaveUnfitted(t *testing.T) {
	enc, _ := NewEncoder(2, 64, 1)
	m, _ := NewModel(enc, DefaultConfig())
	pipe := NewPipeline(m)
	if err := pipe.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("unfitted pipeline accepted Save")
	}
}

func TestClassifierFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	var xs [][]float64
	var labels []int
	for i := 0; i < 300; i++ {
		c := rng.Intn(2)
		off := float64(c)*4 - 2
		xs = append(xs, []float64{off + rng.NormFloat64(), off + rng.NormFloat64()})
		labels = append(labels, c)
	}
	enc, err := NewEncoderBandwidth(2, 1000, 2.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(enc, ClassifierConfig{Classes: 2, Epochs: 10, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(xs, labels); err != nil {
		t.Fatal(err)
	}
	acc, err := clf.Accuracy(xs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("separable blobs accuracy %v too low", acc)
	}
}

func TestSequenceEncoderFacade(t *testing.T) {
	base, err := NewEncoderBandwidth(1, 512, 0.8, 23)
	if err != nil {
		t.Fatal(err)
	}
	seqEnc, err := NewSequenceEncoder(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seqEnc.Features() != 4 || seqEnc.Dim() != 512 {
		t.Fatalf("sequence encoder shape wrong: %d/%d", seqEnc.Features(), seqEnc.Dim())
	}
	m, err := NewModel(seqEnc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 512 {
		t.Fatal("model over sequence encoder wrong dim")
	}
	if _, err := NewSequenceEncoder(nil, 4); err == nil {
		t.Fatal("nil base accepted")
	}
}

func TestQAgentFacade(t *testing.T) {
	cfg := DefaultQAgentConfig()
	cfg.Dim = 256
	agent, err := NewQAgent(&Chase{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := agent.Train(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 5 {
		t.Fatalf("episodes %d", res.Episodes)
	}
	if _, err := agent.Evaluate(2); err != nil {
		t.Fatal(err)
	}
	env := &CartPole{MaxSteps: 10}
	rng := rand.New(rand.NewSource(24))
	s := env.Reset(rng)
	if len(s) != 4 {
		t.Fatal("cartpole facade state wrong")
	}
}

func TestModelSparsifyFacade(t *testing.T) {
	all := makeData(25, 400)
	enc, _ := NewEncoder(2, 512, 26)
	cfg := DefaultConfig()
	cfg.Epochs = 8
	cfg.PredictMode = PredictBinaryQuery
	m, _ := NewModel(enc, cfg)
	pipe := NewPipeline(m)
	if _, err := pipe.Fit(all); err != nil {
		t.Fatal(err)
	}
	if err := m.Sparsify(0.5); err != nil {
		t.Fatal(err)
	}
	if s := m.ModelSparsity(); math.Abs(s-0.5) > 0.02 {
		t.Fatalf("sparsity %v, want ≈0.5", s)
	}
}

func TestPredictBatchParallelFacade(t *testing.T) {
	all := makeData(27, 300)
	enc, _ := NewEncoder(2, 256, 28)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m, _ := NewModel(enc, cfg)
	pipe := NewPipeline(m)
	if _, err := pipe.Fit(all); err != nil {
		t.Fatal(err)
	}
	// Parallel batch prediction on standardized rows must equal sequential.
	sc, _ := FitScaler(all, true)
	std, _ := sc.Transform(all)
	seqP, err := m.PredictBatch(std.X[:50])
	if err != nil {
		t.Fatal(err)
	}
	parP, err := m.PredictBatchParallel(std.X[:50], 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqP {
		if seqP[i] != parP[i] {
			t.Fatal("parallel facade differs from sequential")
		}
	}
}
