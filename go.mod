module reghd

go 1.22
