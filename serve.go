package reghd

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"reghd/internal/core"
	"reghd/internal/hdc"
)

// Snapshot is an immutable copy of a model's prediction state. Every method
// is safe from any number of goroutines, concurrently with further training
// of the source model.
type Snapshot = core.Snapshot

// AtomicOpCounter accumulates primitive-operation counts with atomic adds,
// safe for concurrent serving; install one on a Snapshot (SetCounter) or an
// Engine (EnableOpCounting).
type AtomicOpCounter = hdc.AtomicCounter

// Engine is a snapshot-publication serving engine: readers predict against
// an immutable Snapshot reached through one atomic pointer load — no locks,
// no shared scratch — while a single writer streams PartialFit updates into
// the live model and republishes at will. This is the concurrency pattern
// RegHD's single-pass streaming story needs in production: training and
// serving proceed simultaneously, and every reader observes a consistent
// frozen model rather than a half-updated one.
//
// Reader methods (Predict, PredictBatch, Snapshot, Metrics) may be called
// from any number of goroutines. Writer methods (PartialFit, Publish,
// Update, EnableOpCounting, EnableMetrics, SetPublishEvery) serialize on an
// internal mutex, so multiple producers may feed the engine too. Reads
// never block on writes.
//
// Observability is opt-in: EnableMetrics installs latency histograms,
// per-stage timing, and snapshot-staleness gauges (read them with Metrics);
// EnableOpCounting accounts primitive operations for the hardware cost
// model. Both keep the read path lock-free.
type Engine struct {
	mu    sync.Mutex // serializes writers and snapshot publication
	model *core.Model
	// scaler, when non-nil, standardizes features/target on the way in and
	// de-standardizes predictions on the way out (engines built from a
	// fitted Pipeline).
	scaler *Scaler
	snap   atomic.Pointer[core.Snapshot]

	counter *AtomicOpCounter

	// stats, when non-nil, is the serving instrumentation installed by
	// EnableMetrics; readers reach it with one atomic load, so metrics-off
	// serving pays a single pointer check.
	stats atomic.Pointer[serveStats]

	publishEvery int
	sincePublish int

	// recentX/recentY ring-buffer the last calibWindow standardized
	// PartialFit samples for binary-model configurations: republication
	// passes them to RefreshShadows so the output calibration (a, b) tracks
	// the stream instead of freezing at its Fit-time value.
	recentX   [][]float64
	recentY   []float64
	recentPos int
	recentLen int
}

// calibWindow is how many recent streaming samples the engine retains for
// the calibration refresh of binary-model configurations.
const calibWindow = 256

// DefaultPublishEvery is the default number of PartialFit updates between
// automatic snapshot republications (and binary-shadow refreshes). Each
// publication deep-copies k·D model state, so per-sample publication would
// dominate small-D streaming workloads; a few dozen samples of staleness is
// the usual serving trade.
const DefaultPublishEvery = 64

// NewEngine wraps a trained model for concurrent serving and publishes its
// first snapshot. The engine takes over mutation of the model: do not call
// the model's own writer methods directly afterwards.
func NewEngine(m *Model) (*Engine, error) {
	if m == nil {
		return nil, errors.New("reghd: nil model")
	}
	if !m.Trained() {
		return nil, ErrNotTrained
	}
	e := &Engine{model: m, publishEvery: DefaultPublishEvery}
	e.publishLocked()
	return e, nil
}

// NewPipelineEngine wraps a fitted pipeline: the engine standardizes
// features before prediction, returns outputs in original target units,
// and PartialFit standardizes the incoming sample the same way.
func NewPipelineEngine(p *Pipeline) (*Engine, error) {
	if p == nil || p.scaler == nil {
		return nil, errors.New("reghd: pipeline has not been fitted")
	}
	e, err := NewEngine(p.model)
	if err != nil {
		return nil, err
	}
	e.scaler = p.scaler
	return e, nil
}

// publishLocked snapshots the live model and swaps the published pointer,
// updating the staleness gauges when metrics are enabled. Callers must hold
// e.mu (or be the constructor).
func (e *Engine) publishLocked() {
	s := e.model.Snapshot()
	s.SetCounter(e.counter)
	if st := e.stats.Load(); st != nil {
		s.SetStages(&st.stages)
		st.publishes.Add(1)
		st.updatesSincePublish.Store(0)
		st.lastPublishNS.Store(time.Now().UnixNano())
	}
	e.snap.Store(s)
	e.sincePublish = 0
}

// Snapshot returns the currently published snapshot. The result stays valid
// (and frozen) indefinitely; callers holding it across republications simply
// serve the older model state.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// refreshLocked re-quantizes the binary shadows and, when recent streaming
// samples are buffered, refits the binary-model output calibration on them.
// Callers must hold e.mu.
func (e *Engine) refreshLocked() error {
	if e.recentLen == 0 {
		return e.model.RefreshShadows(nil, nil)
	}
	return e.model.RefreshShadows(e.recentX[:e.recentLen], e.recentY[:e.recentLen])
}

// Publish refreshes the binary shadows (and, for binary-model
// configurations, the output calibration against the recent streaming
// window) from the live integer state and publishes a fresh snapshot.
// Writers that want predictions to observe their updates immediately call
// this after mutating; PartialFit also triggers it automatically every
// SetPublishEvery updates.
func (e *Engine) Publish() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.refreshLocked(); err != nil {
		return err
	}
	e.publishLocked()
	return nil
}

// SetPublishEvery sets how many PartialFit updates elapse between automatic
// republications; n <= 0 disables automatic publication (the writer then
// controls visibility explicitly with Publish).
func (e *Engine) SetPublishEvery(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.publishEvery = n
}

// EnableOpCounting installs an atomic inference counter on all future
// snapshots, republishes, and returns the counter. Every prediction served
// from the engine afterwards is accounted; the counter may be read at any
// time while serving continues.
func (e *Engine) EnableOpCounting() *AtomicOpCounter {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.counter == nil {
		e.counter = &AtomicOpCounter{}
	}
	e.publishLocked()
	return e.counter
}

// PartialFit applies one streaming update to the live model (standardized
// through the pipeline scaler when the engine wraps one). Readers keep
// serving the published snapshot untouched; the update becomes visible at
// the next publication.
func (e *Engine) PartialFit(x []float64, y float64) error {
	st := e.stats.Load()
	if st == nil {
		return e.partialFit(x, y)
	}
	t0 := time.Now()
	err := e.partialFit(x, y)
	st.partialFit.Observe(time.Since(t0), err)
	return err
}

// partialFit is the uninstrumented PartialFit body.
func (e *Engine) partialFit(x []float64, y float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scaler != nil {
		row := append([]float64(nil), x...)
		if err := e.scaler.TransformRow(row); err != nil {
			return err
		}
		x = row
		y = e.scaler.ScaleY(y)
	}
	if err := e.model.PartialFit(x, y); err != nil {
		return err
	}
	if st := e.stats.Load(); st != nil {
		st.updatesSincePublish.Add(1)
	}
	if e.model.Config().PredictMode.UsesBinaryModel() {
		e.remember(x, y)
	}
	if e.publishEvery > 0 {
		e.sincePublish++
		if e.sincePublish >= e.publishEvery {
			if err := e.refreshLocked(); err != nil {
				return err
			}
			e.publishLocked()
		}
	}
	return nil
}

// remember records a standardized streaming sample in the calibration ring
// buffer. Callers must hold e.mu.
func (e *Engine) remember(x []float64, y float64) {
	if e.recentX == nil {
		e.recentX = make([][]float64, calibWindow)
		e.recentY = make([]float64, calibWindow)
	}
	e.recentX[e.recentPos] = append([]float64(nil), x...)
	e.recentY[e.recentPos] = y
	e.recentPos = (e.recentPos + 1) % calibWindow
	if e.recentLen < calibWindow {
		e.recentLen++
	}
}

// Update runs fn against the live model under the writer lock and publishes
// a fresh snapshot afterwards — the escape hatch for writer operations the
// engine does not wrap (Fit on new data, Sparsify, fault injection). Unlike
// Publish, binary shadows are NOT refreshed: fn controls the exact state
// that becomes visible.
func (e *Engine) Update(fn func(*Model) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := fn(e.model); err != nil {
		return err
	}
	e.publishLocked()
	return nil
}

// Predict serves one prediction from the published snapshot: one atomic
// pointer load, pooled scratch, no locks. With a pipeline scaler the input
// is standardized and the output returned in original target units.
func (e *Engine) Predict(x []float64) (float64, error) {
	st := e.stats.Load()
	if st == nil {
		return e.predict(nil, x)
	}
	t0 := time.Now()
	y, err := e.predict(st, x)
	st.predict.Observe(time.Since(t0), err)
	return y, err
}

// predict is the prediction body; st, when non-nil, receives the
// standardization stage time (encode/similarity/readout are timed inside
// the snapshot).
func (e *Engine) predict(st *serveStats, x []float64) (float64, error) {
	snap := e.snap.Load()
	if e.scaler != nil {
		var ts time.Time
		if st != nil {
			ts = time.Now()
		}
		row := append([]float64(nil), x...)
		if err := e.scaler.TransformRow(row); err != nil {
			return 0, err
		}
		if st != nil {
			st.stages.Observe(core.StageStandardize, time.Since(ts))
		}
		x = row
	}
	y, err := snap.Predict(x)
	if err != nil {
		return 0, err
	}
	if e.scaler != nil {
		y = e.scaler.InverseY(y)
	}
	return y, nil
}

// PredictBatch serves a batch from one consistent published snapshot,
// fanned out over GOMAXPROCS workers. Metrics time the call as a whole (one
// histogram entry per batch, with rows accounted separately).
func (e *Engine) PredictBatch(xs [][]float64) ([]float64, error) {
	st := e.stats.Load()
	if st == nil {
		return e.predictBatch(nil, xs)
	}
	t0 := time.Now()
	ys, err := e.predictBatch(st, xs)
	st.predictBatch.Observe(time.Since(t0), err)
	if err == nil {
		st.batchRows.Add(uint64(len(xs)))
	}
	return ys, err
}

// predictBatch is the batch-prediction body; st, when non-nil, receives the
// standardization stage time (one observation covering the whole batch).
func (e *Engine) predictBatch(st *serveStats, xs [][]float64) ([]float64, error) {
	snap := e.snap.Load()
	rows := xs
	if e.scaler != nil {
		var ts time.Time
		if st != nil {
			ts = time.Now()
		}
		rows = make([][]float64, len(xs))
		for i, x := range xs {
			row := append([]float64(nil), x...)
			if err := e.scaler.TransformRow(row); err != nil {
				return nil, err
			}
			rows[i] = row
		}
		if st != nil {
			st.stages.Observe(core.StageStandardize, time.Since(ts))
		}
	}
	ys, err := snap.PredictBatchParallel(rows, 0)
	if err != nil {
		return nil, err
	}
	if e.scaler != nil {
		for i := range ys {
			ys[i] = e.scaler.InverseY(ys[i])
		}
	}
	return ys, nil
}
