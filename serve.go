package reghd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"reghd/internal/core"
	"reghd/internal/hdc"
)

// Snapshot is an immutable copy of a model's prediction state. Every method
// is safe from any number of goroutines, concurrently with further training
// of the source model.
type Snapshot = core.Snapshot

// AtomicOpCounter accumulates primitive-operation counts with atomic adds,
// safe for concurrent serving; install one on a Snapshot (SetCounter) or an
// Engine (EnableOpCounting).
type AtomicOpCounter = hdc.AtomicCounter

// Engine is a snapshot-publication serving engine: readers predict against
// an immutable Snapshot reached through one atomic pointer load — no locks,
// no shared scratch — while a single writer streams PartialFit updates into
// the live model and republishes at will. This is the concurrency pattern
// RegHD's single-pass streaming story needs in production: training and
// serving proceed simultaneously, and every reader observes a consistent
// frozen model rather than a half-updated one.
//
// Reader methods (Predict, PredictBatch, Snapshot, Metrics) may be called
// from any number of goroutines. Writer methods (PartialFit, Publish,
// Update, EnableOpCounting, EnableMetrics, SetPublishEvery) serialize on an
// internal mutex, so multiple producers may feed the engine too. Reads
// never block on writes.
//
// Observability is opt-in: EnableMetrics installs latency histograms,
// per-stage timing, and snapshot-staleness gauges (read them with Metrics);
// EnableOpCounting accounts primitive operations for the hardware cost
// model. Both keep the read path lock-free.
//
// The engine is hardened for hostile conditions (see docs/ROBUSTNESS.md):
// inputs are validated before touching model state (ErrInvalidInput),
// request panics are contained (PanicError), SetMaxInFlight bounds
// concurrent load (ErrOverloaded), and a failed PartialFit or
// republication drops the engine into degraded mode — readers keep serving
// the last known-good snapshot until an explicit Publish or Update
// succeeds.
type Engine struct {
	mu    sync.Mutex // serializes writers and snapshot publication
	model *core.Model
	// scaler, when non-nil, standardizes features/target on the way in and
	// de-standardizes predictions on the way out (engines built from a
	// fitted Pipeline).
	scaler *Scaler
	// features is the model's input arity, cached for lock-free request
	// validation.
	features int
	// snap holds the published {snapshot, sequence} pair; pairing them in
	// one pointer makes the publication sequence a torn-read canary —
	// readers can never observe a newer snapshot with an older sequence.
	snap atomic.Pointer[published]
	// seq numbers publications; guarded by mu.
	seq uint64

	// robust carries the always-on hardening counters and the admission
	// gate (see harden.go).
	robust robustStats
	// coal, when non-nil, is the active request coalescer: Predict calls
	// micro-batch through its window instead of serving directly (see
	// coalesce.go). Readers reach it with one atomic load, so
	// coalescing-off serving pays a single pointer check.
	coal atomic.Pointer[coalescer]
	// coalStats are the always-on coalescing counters; they survive
	// coalescer enable/disable cycles.
	coalStats coalesceStats
	// publishFail, when non-nil, is the test-only failpoint forcing
	// republications to fail (setPublishFailpoint); guarded by mu.
	publishFail func() error

	counter *AtomicOpCounter

	// stats, when non-nil, is the serving instrumentation installed by
	// EnableMetrics; readers reach it with one atomic load, so metrics-off
	// serving pays a single pointer check.
	stats atomic.Pointer[serveStats]

	publishEvery int
	sincePublish int

	// recentX/recentY ring-buffer the last calibWindow standardized
	// PartialFit samples for binary-model configurations: republication
	// passes them to RefreshShadows so the output calibration (a, b) tracks
	// the stream instead of freezing at its Fit-time value.
	recentX   [][]float64
	recentY   []float64
	recentPos int
	recentLen int
}

// published pairs a snapshot with its publication sequence number so both
// are swapped in one atomic store.
type published struct {
	snap *core.Snapshot
	seq  uint64
}

// calibWindow is how many recent streaming samples the engine retains for
// the calibration refresh of binary-model configurations.
const calibWindow = 256

// DefaultPublishEvery is the default number of PartialFit updates between
// automatic snapshot republications (and binary-shadow refreshes). Each
// publication deep-copies k·D model state, so per-sample publication would
// dominate small-D streaming workloads; a few dozen samples of staleness is
// the usual serving trade.
const DefaultPublishEvery = 64

// NewEngine wraps a trained model for concurrent serving and publishes its
// first snapshot. The engine takes over mutation of the model: do not call
// the model's own writer methods directly afterwards.
func NewEngine(m *Model) (*Engine, error) {
	if m == nil {
		return nil, errors.New("reghd: nil model")
	}
	if !m.Trained() {
		return nil, ErrNotTrained
	}
	e := &Engine{
		model:        m,
		features:     m.Encoder().Features(),
		publishEvery: DefaultPublishEvery,
	}
	e.publishLocked()
	return e, nil
}

// NewPipelineEngine wraps a fitted pipeline: the engine standardizes
// features before prediction, returns outputs in original target units,
// and PartialFit standardizes the incoming sample the same way.
func NewPipelineEngine(p *Pipeline) (*Engine, error) {
	if p == nil || p.scaler == nil {
		return nil, errors.New("reghd: pipeline has not been fitted")
	}
	e, err := NewEngine(p.model)
	if err != nil {
		return nil, err
	}
	e.scaler = p.scaler
	return e, nil
}

// publishLocked snapshots the live model and swaps the published pointer,
// updating the staleness gauges when metrics are enabled. Callers must hold
// e.mu (or be the constructor).
func (e *Engine) publishLocked() {
	s := e.model.Snapshot()
	s.SetCounter(e.counter)
	if st := e.stats.Load(); st != nil {
		s.SetStages(&st.stages)
		st.publishes.Add(1)
		st.updatesSincePublish.Store(0)
		st.lastPublishNS.Store(time.Now().UnixNano())
	}
	e.seq++
	e.snap.Store(&published{snap: s, seq: e.seq})
	e.sincePublish = 0
}

// Snapshot returns the currently published snapshot. The result stays valid
// (and frozen) indefinitely; callers holding it across republications simply
// serve the older model state.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load().snap }

// Features returns the model's input arity — the length every Predict row
// must have. Constant for the engine's lifetime.
func (e *Engine) Features() int { return e.features }

// refreshLocked re-quantizes the binary shadows and, when recent streaming
// samples are buffered, refits the binary-model output calibration on them.
// Callers must hold e.mu.
func (e *Engine) refreshLocked() error {
	if e.recentLen == 0 {
		return e.model.RefreshShadows(nil, nil)
	}
	return e.model.RefreshShadows(e.recentX[:e.recentLen], e.recentY[:e.recentLen])
}

// republishLocked runs the full republication path — failpoint, shadow
// refresh, publication. Callers must hold e.mu; on error nothing was
// published and the previously published snapshot keeps serving.
func (e *Engine) republishLocked() error {
	if e.publishFail != nil {
		if err := e.publishFail(); err != nil {
			return err
		}
	}
	if err := e.refreshLocked(); err != nil {
		return err
	}
	e.publishLocked()
	return nil
}

// Publish refreshes the binary shadows (and, for binary-model
// configurations, the output calibration against the recent streaming
// window) from the live integer state and publishes a fresh snapshot.
// Writers that want predictions to observe their updates immediately call
// this after mutating; PartialFit also triggers it automatically every
// SetPublishEvery updates. A successful Publish clears degraded mode — it
// is the recovery path after a mid-stream writer failure; a failed one
// enters (or stays in) degraded mode and leaves the last known-good
// snapshot serving.
func (e *Engine) Publish() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.republishLocked(); err != nil {
		e.robust.degraded.Store(true)
		return err
	}
	e.robust.degraded.Store(false)
	return nil
}

// SetPublishEvery sets how many PartialFit updates elapse between automatic
// republications; n <= 0 disables automatic publication (the writer then
// controls visibility explicitly with Publish).
func (e *Engine) SetPublishEvery(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.publishEvery = n
}

// EnableOpCounting installs an atomic inference counter on all future
// snapshots, republishes, and returns the counter. Every prediction served
// from the engine afterwards is accounted; the counter may be read at any
// time while serving continues.
func (e *Engine) EnableOpCounting() *AtomicOpCounter {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.counter == nil {
		e.counter = &AtomicOpCounter{}
	}
	e.publishLocked()
	return e.counter
}

// PartialFit applies one streaming update to the live model (standardized
// through the pipeline scaler when the engine wraps one). Readers keep
// serving the published snapshot untouched; the update becomes visible at
// the next publication.
//
// The sample is validated before any model state is touched: NaN/Inf
// features or targets and wrong-arity rows are rejected with
// ErrInvalidInput instead of silently corrupting cluster state. If the
// update or its automatic republication fails mid-stream, the engine
// enters degraded mode: readers keep serving the last known-good snapshot
// and automatic republication is suspended until an explicit Publish or
// Update succeeds.
func (e *Engine) PartialFit(x []float64, y float64) error {
	if err := core.ValidateRow(x, e.features); err != nil {
		e.robust.invalid.Add(1)
		return err
	}
	if err := core.ValidateTarget(y); err != nil {
		e.robust.invalid.Add(1)
		return err
	}
	st := e.stats.Load()
	if st == nil {
		return e.partialFit(x, y)
	}
	t0 := time.Now()
	err := e.partialFit(x, y)
	st.partialFit.Observe(time.Since(t0), err)
	return err
}

// partialFit is the uninstrumented PartialFit body. The caller has already
// validated the sample.
func (e *Engine) partialFit(x []float64, y float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scaler != nil {
		row := append([]float64(nil), x...)
		if err := e.scaler.TransformRow(row); err != nil {
			return err
		}
		x = row
		y = e.scaler.ScaleY(y)
	}
	// Guard the model update: a panic here means the live model may be
	// half-updated, so besides converting it to an error the engine drops
	// into degraded mode rather than republishing suspect state.
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = e.recovered("PartialFit", r)
			}
		}()
		err = e.model.PartialFit(x, y)
	}()
	if err != nil {
		e.robust.degraded.Store(true)
		return err
	}
	if st := e.stats.Load(); st != nil {
		st.updatesSincePublish.Add(1)
	}
	if e.model.Config().PredictMode.UsesBinaryModel() {
		e.remember(x, y)
	}
	if e.publishEvery > 0 && !e.robust.degraded.Load() {
		e.sincePublish++
		if e.sincePublish >= e.publishEvery {
			if err := e.republishLocked(); err != nil {
				e.robust.degraded.Store(true)
				return fmt.Errorf("reghd: republish failed, serving last good snapshot: %w", err)
			}
		}
	}
	return nil
}

// remember records a standardized streaming sample in the calibration ring
// buffer. Callers must hold e.mu.
func (e *Engine) remember(x []float64, y float64) {
	if e.recentX == nil {
		e.recentX = make([][]float64, calibWindow)
		e.recentY = make([]float64, calibWindow)
	}
	e.recentX[e.recentPos] = append([]float64(nil), x...)
	e.recentY[e.recentPos] = y
	e.recentPos = (e.recentPos + 1) % calibWindow
	if e.recentLen < calibWindow {
		e.recentLen++
	}
}

// Update runs fn against the live model under the writer lock and publishes
// a fresh snapshot afterwards — the escape hatch for writer operations the
// engine does not wrap (Fit on new data, Sparsify, fault injection). Unlike
// Publish, binary shadows are NOT refreshed: fn controls the exact state
// that becomes visible. A successful Update clears degraded mode: fn
// vouches for the state it publishes.
func (e *Engine) Update(fn func(*Model) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := fn(e.model); err != nil {
		return err
	}
	e.publishLocked()
	e.robust.degraded.Store(false)
	return nil
}

// Predict serves one prediction from the published snapshot: one atomic
// pointer load, pooled scratch, no locks. With a pipeline scaler the input
// is standardized and the output returned in original target units.
//
// The input is validated first (ErrInvalidInput), the request passes the
// admission gate (ErrOverloaded when SetMaxInFlight's bound is reached),
// and a panic anywhere in the serving path is contained to this request
// (PanicError). Rejected requests do not appear in the latency digests.
func (e *Engine) Predict(x []float64) (float64, error) {
	return e.PredictCtx(context.Background(), x)
}

// PredictCtx is Predict with a deadline: a context that is already
// cancelled or expired is rejected before any serving work starts. A
// single prediction is microseconds of work, so the context is checked at
// admission, not mid-kernel; batch callers get per-row cancellation
// through PredictBatchCtx.
func (e *Engine) PredictCtx(ctx context.Context, x []float64) (float64, error) {
	if err := core.ValidateRow(x, e.features); err != nil {
		e.robust.invalid.Add(1)
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if !e.acquire() {
		return 0, ErrOverloaded
	}
	defer e.release()
	st := e.stats.Load()
	if c := e.coal.Load(); c != nil {
		// Coalescing path: park in the micro-batch window (see coalesce.go).
		// The caller keeps its gate slot while parked, and the latency digest
		// includes the window wait — it is real serving time.
		if st == nil {
			return c.do(ctx, x)
		}
		t0 := time.Now()
		y, err := c.do(ctx, x)
		st.predict.Observe(time.Since(t0), err)
		return y, err
	}
	if st == nil {
		return e.predictSafe(nil, x)
	}
	t0 := time.Now()
	y, err := e.predictSafe(st, x)
	st.predict.Observe(time.Since(t0), err)
	return y, err
}

// predictSafe wraps the prediction body in the panic guard.
func (e *Engine) predictSafe(st *serveStats, x []float64) (y float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			y, err = 0, e.recovered("Predict", r)
		}
	}()
	return e.predict(st, x)
}

// predict is the prediction body; st, when non-nil, receives the
// standardization stage time (encode/similarity/readout are timed inside
// the snapshot).
func (e *Engine) predict(st *serveStats, x []float64) (float64, error) {
	snap := e.snap.Load().snap
	if e.scaler != nil {
		var ts time.Time
		if st != nil {
			ts = time.Now()
		}
		row := append([]float64(nil), x...)
		if err := e.scaler.TransformRow(row); err != nil {
			return 0, err
		}
		if st != nil {
			st.stages.Observe(core.StageStandardize, time.Since(ts))
		}
		x = row
	}
	y, err := snap.Predict(x)
	if err != nil {
		return 0, err
	}
	if e.scaler != nil {
		y = e.scaler.InverseY(y)
	}
	return y, nil
}

// PredictBatch serves a batch from one consistent published snapshot,
// fanned out over GOMAXPROCS workers. Metrics time the call as a whole (one
// histogram entry per batch, with rows accounted separately). Every row is
// validated before any serving work starts; the whole batch counts as one
// request at the admission gate.
func (e *Engine) PredictBatch(xs [][]float64) ([]float64, error) {
	return e.PredictBatchCtx(context.Background(), xs)
}

// PredictBatchCtx is PredictBatch with a deadline: the context is checked
// before every row is dispatched, so cancelling mid-batch stops the
// remaining rows instead of running the batch to completion.
func (e *Engine) PredictBatchCtx(ctx context.Context, xs [][]float64) ([]float64, error) {
	if err := e.validateRows(xs); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !e.acquire() {
		return nil, ErrOverloaded
	}
	defer e.release()
	st := e.stats.Load()
	if st == nil {
		return e.predictBatchSafe(ctx, nil, xs)
	}
	t0 := time.Now()
	ys, err := e.predictBatchSafe(ctx, st, xs)
	st.predictBatch.Observe(time.Since(t0), err)
	if err == nil {
		st.batchRows.Add(uint64(len(xs)))
	}
	return ys, err
}

// predictBatchSafe wraps the batch body in the panic guard.
func (e *Engine) predictBatchSafe(ctx context.Context, st *serveStats, xs [][]float64) (ys []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			ys, err = nil, e.recovered("PredictBatch", r)
		}
	}()
	return e.predictBatch(ctx, st, xs)
}

// predictBatch is the batch-prediction body; st, when non-nil, receives the
// standardization stage time (one observation covering the whole batch).
func (e *Engine) predictBatch(ctx context.Context, st *serveStats, xs [][]float64) ([]float64, error) {
	snap := e.snap.Load().snap
	rows := xs
	if e.scaler != nil {
		var ts time.Time
		if st != nil {
			ts = time.Now()
		}
		rows = make([][]float64, len(xs))
		for i, x := range xs {
			row := append([]float64(nil), x...)
			if err := e.scaler.TransformRow(row); err != nil {
				return nil, err
			}
			rows[i] = row
		}
		if st != nil {
			st.stages.Observe(core.StageStandardize, time.Since(ts))
		}
	}
	ys, err := snap.PredictBatchParallelCtx(ctx, rows, 0)
	if err != nil {
		return nil, err
	}
	if e.scaler != nil {
		for i := range ys {
			ys[i] = e.scaler.InverseY(ys[i])
		}
	}
	return ys, nil
}
