package reghd_test

import (
	"math/rand"
	"testing"

	"reghd"
	"reghd/internal/core"
	"reghd/internal/encoding"
	"reghd/internal/experiments"
	"reghd/internal/hdc"
)

// benchOptions are the experiment settings used by the table/figure
// benchmarks: moderate dimensionality and sample caps so the full bench
// suite completes in minutes while preserving every trend. The
// reghd-bench CLI runs the same experiments at full scale.
func benchOptions() experiments.Options {
	return experiments.Options{Seed: 1, Dim: 512, MaxSamples: 1200, Epochs: 20}
}

// runExperiment executes one registered experiment per benchmark
// iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	}
}

// One benchmark per paper artifact (see DESIGN.md §4).

func BenchmarkFig3aIterations(b *testing.B)        { runExperiment(b, "fig3a") }
func BenchmarkFig3bSingleVsMulti(b *testing.B)     { runExperiment(b, "fig3b") }
func BenchmarkTable1Quality(b *testing.B)          { runExperiment(b, "table1") }
func BenchmarkFig6ClusterQuant(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkFig7Configs(b *testing.B)            { runExperiment(b, "fig7") }
func BenchmarkFig8Efficiency(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig9ConfigEfficiency(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkTable2Dimensionality(b *testing.B)   { runExperiment(b, "table2") }
func BenchmarkCapacityAnalysis(b *testing.B)       { runExperiment(b, "cap") }
func BenchmarkRobustnessSweep(b *testing.B)        { runExperiment(b, "robust") }
func BenchmarkAblationSweep(b *testing.B)          { runExperiment(b, "ablate") }
func BenchmarkSparsitySweep(b *testing.B)          { runExperiment(b, "sparse") }
func BenchmarkDesignSpaceExploration(b *testing.B) { runExperiment(b, "dse") }
func BenchmarkPlatformComparison(b *testing.B)     { runExperiment(b, "platforms") }

// Micro-benchmarks of the hot kernels, for profiling the substrate itself.

func BenchmarkEncodeNonlinear(b *testing.B) {
	enc, err := encoding.NewNonlinear(rand.New(rand.NewSource(1)), 13, 4000)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 13)
	for j := range x {
		x[j] = rand.New(rand.NewSource(2)).NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeBipolar(nil, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHammingSimilarity(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := hdc.RandomBipolarBinary(rng, 4000)
	y := hdc.RandomBipolarBinary(rng, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdc.HammingSimilarity(nil, x, y)
	}
}

func BenchmarkCosineSimilarity(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := hdc.RandomBipolar(rng, 4000)
	y := hdc.RandomGaussian(rng, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdc.Cosine(nil, x, y)
	}
}

func BenchmarkDotBinaryDense(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := hdc.RandomBipolarBinary(rng, 4000)
	y := hdc.RandomGaussian(rng, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdc.DotBinaryDense(nil, x, y)
	}
}

func BenchmarkTrainEpochMultiModel(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	train := &reghd.Dataset{Name: "bench", X: make([][]float64, 500), Y: make([]float64, 500)}
	for i := range train.X {
		x := make([]float64, 8)
		var y float64
		for j := range x {
			x[j] = rng.NormFloat64()
			y += x[j]
		}
		train.X[i] = x
		train.Y[i] = y
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := encoding.NewNonlinear(rand.New(rand.NewSource(7)), 8, 2000)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{Models: 8, Epochs: 1, Tol: 1e-12, Patience: 1000, Seed: 8}
		m, err := core.New(enc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrainedModel fits the multi-model configuration the prediction
// benchmarks share.
func benchTrainedModel(b *testing.B) (*core.Model, *reghd.Dataset) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	train := &reghd.Dataset{Name: "bench", X: make([][]float64, 200), Y: make([]float64, 200)}
	for i := range train.X {
		x := make([]float64, 8)
		var y float64
		for j := range x {
			x[j] = rng.NormFloat64()
			y += x[j]
		}
		train.X[i] = x
		train.Y[i] = y
	}
	enc, err := encoding.NewNonlinear(rand.New(rand.NewSource(10)), 8, 2000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Models: 8, Epochs: 3, Seed: 11}
	m, err := core.New(enc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	return m, train
}

func BenchmarkPredictMultiModel(b *testing.B) {
	m, train := benchTrainedModel(b)
	x := train.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(x); err != nil {
			b.Fatal(err)
		}
	}
}

// Concurrent-serving benchmarks: throughput of the race-free prediction
// paths under GOMAXPROCS-way parallel load (compare ns/op against the
// serial BenchmarkPredictMultiModel to see the scaling).

func BenchmarkPredictConcurrentModel(b *testing.B) {
	m, train := benchTrainedModel(b)
	x := train.X[0]
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := m.Predict(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPredictConcurrentSnapshot(b *testing.B) {
	m, train := benchTrainedModel(b)
	snap := m.Snapshot()
	x := train.X[0]
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := snap.Predict(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineServeWhileTraining measures read throughput while a writer
// goroutine streams PartialFit updates and republishes snapshots — the
// serve-while-training workload the engine exists for.
func BenchmarkEngineServeWhileTraining(b *testing.B) {
	m, train := benchTrainedModel(b)
	e, err := reghd.NewEngine(m)
	if err != nil {
		b.Fatal(err)
	}
	e.SetPublishEvery(32)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := i % len(train.X)
			if err := e.PartialFit(train.X[r], train.Y[r]); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	x := train.X[0]
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Predict(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// benchEngine returns a serving engine over a trained model plus an input
// row, shared by the metrics-overhead pair below.
func benchEngine(b *testing.B) (*reghd.Engine, []float64) {
	b.Helper()
	m, train := benchTrainedModel(b)
	e, err := reghd.NewEngine(m)
	if err != nil {
		b.Fatal(err)
	}
	return e, train.X[0]
}

// BenchmarkEnginePredictMetricsOff / MetricsOn measure the cost of the
// instrumentation layer on the hot read path. The acceptance bar for the
// observability work is < 5% throughput overhead; compare ns/op of the
// two with benchstat (or by eye).
func BenchmarkEnginePredictMetricsOff(b *testing.B) {
	e, x := benchEngine(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Predict(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEnginePredictMetricsOn(b *testing.B) {
	e, x := benchEngine(b)
	e.EnableMetrics()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Predict(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}
