package reghd

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"reghd/internal/core"
	"reghd/internal/dataset"
)

// Pipeline bundles a RegHD model with feature/target standardization: Fit
// learns the scaler from the training data, trains the model on
// standardized samples, and Predict returns outputs in the original target
// units. This mirrors the preprocessing used throughout the paper's
// evaluation.
//
// For observability, EnableStageTiming breaks prediction latency down by
// stage (standardize/encode/similarity/readout); to serve a fitted pipeline
// concurrently with full metrics, wrap it in an Engine
// (NewPipelineEngine) and call EnableMetrics there.
type Pipeline struct {
	model  *Model
	scaler *Scaler

	// stages, when non-nil, accumulates per-stage prediction wall time:
	// the standardize stage is recorded here, the encode/similarity/
	// readout stages by the model (Model.Stages points at the same
	// accumulator).
	stages *StageTimes
}

// NewPipeline wraps an untrained model.
func NewPipeline(m *Model) *Pipeline { return &Pipeline{model: m} }

// Model returns the wrapped model.
func (p *Pipeline) Model() *Model { return p.model }

// Scaler returns the fitted standardization, or nil before Fit.
func (p *Pipeline) Scaler() *Scaler { return p.scaler }

// EnableStageTiming turns on per-stage prediction timing
// (standardize/encode/similarity/readout) and returns the accumulator;
// summarize it with StageTimes.Summary. Idempotent. Install before serving
// begins — recording itself is atomic and safe under concurrent
// prediction. Timing costs two timestamps per stage, so leave it off for
// throughput-critical runs.
func (p *Pipeline) EnableStageTiming() *StageTimes {
	if p.stages == nil {
		p.stages = &StageTimes{}
		p.model.Stages = p.stages
	}
	return p.stages
}

// StageTimes returns the per-stage timing accumulator, or nil when stage
// timing was never enabled.
func (p *Pipeline) StageTimes() *StageTimes { return p.stages }

// Fit standardizes train and trains the model, returning the training
// summary.
func (p *Pipeline) Fit(train *Dataset) (*TrainResult, error) {
	sc, err := dataset.FitScaler(train, true)
	if err != nil {
		return nil, err
	}
	trainS, err := sc.Transform(train)
	if err != nil {
		return nil, err
	}
	res, err := p.model.Fit(trainS)
	if err != nil {
		return nil, err
	}
	p.scaler = sc
	return res, nil
}

// Predict returns the regression output for x in original target units.
func (p *Pipeline) Predict(x []float64) (float64, error) {
	if p.scaler == nil {
		return 0, errors.New("reghd: pipeline has not been fitted")
	}
	var ts time.Time
	if p.stages != nil {
		ts = time.Now()
	}
	row := append([]float64(nil), x...)
	if err := p.scaler.TransformRow(row); err != nil {
		return 0, err
	}
	if p.stages != nil {
		p.stages.Observe(StageStandardize, time.Since(ts))
	}
	y, err := p.model.Predict(row)
	if err != nil {
		return 0, err
	}
	return p.scaler.InverseY(y), nil
}

// PredictBatch predicts every row of xs: the batch is standardized once and
// fanned out over GOMAXPROCS prediction workers, with outputs mapped back
// to original target units.
func (p *Pipeline) PredictBatch(xs [][]float64) ([]float64, error) {
	if p.scaler == nil {
		return nil, errors.New("reghd: pipeline has not been fitted")
	}
	var ts time.Time
	if p.stages != nil {
		ts = time.Now()
	}
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		row := append([]float64(nil), x...)
		if err := p.scaler.TransformRow(row); err != nil {
			return nil, fmt.Errorf("reghd: standardizing row %d: %w", i, err)
		}
		rows[i] = row
	}
	if p.stages != nil {
		p.stages.Observe(StageStandardize, time.Since(ts))
	}
	ys, err := p.model.PredictBatchParallel(rows, 0)
	if err != nil {
		return nil, fmt.Errorf("reghd: %w", err)
	}
	for i := range ys {
		ys[i] = p.scaler.InverseY(ys[i])
	}
	return ys, nil
}

// Evaluate returns the pipeline's MSE on a dataset in original units.
func (p *Pipeline) Evaluate(d *Dataset) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	pred, err := p.PredictBatch(d.X)
	if err != nil {
		return 0, err
	}
	return dataset.MSE(pred, d.Y)
}

// pipelineState is the wire form of a fitted pipeline: the scaler plus the
// model's own serialization.
type pipelineState struct {
	Scaler *Scaler
	Model  []byte
}

// Save serializes the fitted pipeline — model and standardization together,
// so a restored pipeline predicts in original units immediately.
func (p *Pipeline) Save(w io.Writer) error {
	if p.scaler == nil {
		return errors.New("reghd: pipeline has not been fitted")
	}
	var mbuf bytes.Buffer
	if err := p.model.Save(&mbuf); err != nil {
		return err
	}
	st := pipelineState{Scaler: p.scaler, Model: mbuf.Bytes()}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("reghd: saving pipeline: %w", err)
	}
	return nil
}

// SaveFile saves the pipeline to a file path.
func (p *Pipeline) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("reghd: %w", err)
	}
	if err := p.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPipeline restores a pipeline previously written with Save.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	var st pipelineState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("reghd: loading pipeline: %w", err)
	}
	if st.Scaler == nil {
		return nil, errors.New("reghd: loaded pipeline has no scaler")
	}
	m, err := core.Load(bytes.NewReader(st.Model))
	if err != nil {
		return nil, err
	}
	return &Pipeline{model: m, scaler: st.Scaler}, nil
}

// LoadPipelineFile restores a pipeline from a file path.
func LoadPipelineFile(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("reghd: %w", err)
	}
	defer f.Close()
	return LoadPipeline(f)
}
