package reghd

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"reghd/internal/obs"
)

// This file is the multi-tenant model registry: a fleet of serving Engines
// behind one router. A Registry owns a model directory where every tenant is
// one checkpoint file (<dir>/<tenant>.gob, written by Pipeline.SaveFile or
// Model.SaveFile), hot-loads a tenant's engine on its first request, routes
// subsequent requests to the resident engine, and evicts least-recently-used
// tenants when a resident-model or resident-byte budget is exceeded — the
// shape "thousands of tenant models behind one process" needs, where
// per-tenant memory (not compute) is the scaling wall. docs/SERVING.md is
// the architecture document.
//
// Concurrency contract:
//
//   - Routing (Engine, Predict, PredictCtx) is safe from any number of
//     goroutines; the registry lock covers only map/LRU bookkeeping, never
//     a model load and never a prediction.
//   - Loads are deduplicated: concurrent first requests for the same tenant
//     perform one file load; the others wait for it (singleflight).
//   - Eviction is safe under in-flight traffic: an evicted *Engine stays
//     fully serviceable for callers that already hold it (its snapshot,
//     scratch pools, and gates are self-contained); eviction only removes
//     the registry's reference so the next request reloads from disk.
//     TestRegistryEvictionInFlightStress races all three.

// ErrUnknownTenant is the sentinel wrapped by registry routing when the
// tenant key has no checkpoint file in the model directory (or is not a
// valid tenant name). Map it to a 404-class response. Unknown tenants are
// not negatively cached: uploading <dir>/<tenant>.gob makes the tenant
// servable on its next request.
var ErrUnknownTenant = errors.New("reghd: unknown tenant")

// ErrModelLoad is the sentinel wrapped by registry routing when a tenant's
// checkpoint file exists but cannot be loaded into a serving engine (it
// also wraps the underlying cause, e.g. ErrCorruptModel). Map it to a
// 503-class response: the tenant exists but is not currently servable.
// Load failures are not cached; a repaired file loads on the next request.
var ErrModelLoad = errors.New("reghd: model load failed")

// ModelExt is the checkpoint filename extension the registry serves: tenant
// key t maps to <Dir>/<t>.gob.
const ModelExt = ".gob"

// RegistryConfig configures NewRegistry.
type RegistryConfig struct {
	// Dir is the model directory. Every *.gob file in it is one tenant,
	// keyed by filename without extension; files may be pipeline
	// checkpoints (Pipeline.SaveFile — served in original target units) or
	// bare model checkpoints (Model.SaveFile).
	Dir string
	// MaxResident bounds how many tenant engines stay resident; exceeding
	// it evicts least-recently-used tenants (never below one). <= 0 means
	// unlimited.
	MaxResident int
	// MaxResidentBytes bounds the summed model deployment bytes
	// (Model.DeploymentBytes) of resident tenants, same LRU policy. <= 0
	// means unlimited. Both budgets may be set; eviction runs until both
	// hold.
	MaxResidentBytes int64
	// MaxInFlight, when > 0, is applied to every loaded engine
	// (Engine.SetMaxInFlight): the per-tenant admission gate. One tenant
	// saturating its gate sheds its own requests (ErrOverloaded) without
	// starving siblings.
	MaxInFlight int
	// PublishEvery, when non-zero, is applied to every loaded engine
	// (Engine.SetPublishEvery) for embedders that stream PartialFit
	// updates through Engine().
	PublishEvery int
	// EngineMetrics enables the full latency instrumentation
	// (Engine.EnableMetrics) on every loaded engine. The registry's own
	// fleet counters (reghd.registry.*) are always on regardless.
	EngineMetrics bool
	// Coalesce, when non-nil, enables request coalescing
	// (Engine.EnableCoalescing) with this configuration on every loaded
	// engine.
	Coalesce *CoalesceConfig
}

// registryStats are the always-on fleet counters (metric namespace
// reghd.registry.*, see docs/OBSERVABILITY.md).
type registryStats struct {
	loads         atomic.Uint64
	loadDedup     atomic.Uint64
	loadErrors    atomic.Uint64
	evictions     atomic.Uint64
	routed        atomic.Uint64
	unknownTenant atomic.Uint64
}

// RegistryMetrics is the fleet counter block, published under the
// reghd.registry expvar variable (see docs/OBSERVABILITY.md). Like the
// engine's robustness counters these are recorded always.
type RegistryMetrics struct {
	// Residents is the number of tenant engines currently resident.
	Residents int `json:"residents"`
	// ResidentBytes is the summed deployment bytes of resident models.
	ResidentBytes int64 `json:"resident_bytes"`
	// MaxResident is the configured resident-model budget (0 = unlimited).
	MaxResident int `json:"max_resident"`
	// MaxResidentBytes is the configured resident-byte budget (0 =
	// unlimited).
	MaxResidentBytes int64 `json:"max_resident_bytes"`
	// Loads counts checkpoint files actually loaded into engines.
	Loads uint64 `json:"loads"`
	// LoadDedup counts requests that piggybacked on a concurrent load of
	// the same tenant instead of loading themselves (singleflight hits).
	LoadDedup uint64 `json:"load_dedup"`
	// Evictions counts tenants evicted by the LRU budget or Evict.
	Evictions uint64 `json:"evictions"`
	// LoadErrors counts failed checkpoint loads (ErrModelLoad).
	LoadErrors uint64 `json:"load_errors"`
	// Routed counts requests successfully routed to a tenant engine.
	Routed uint64 `json:"routed"`
	// UnknownTenant counts requests rejected because no checkpoint file
	// exists for the tenant key (ErrUnknownTenant).
	UnknownTenant uint64 `json:"unknown_tenant"`
}

// tenantEntry is one resident tenant.
type tenantEntry struct {
	name     string
	eng      *Engine
	bytes    int64
	features int
	elem     *list.Element // position in the LRU list; value is *tenantEntry
}

// loadCall is one in-progress checkpoint load that concurrent requests for
// the same tenant wait on.
type loadCall struct {
	done chan struct{}
	eng  *Engine
	err  error
}

// Registry routes requests to a fleet of tenant Engines hot-loaded from a
// model directory, evicting least-recently-used tenants under a configured
// residency budget. Construct with NewRegistry; all methods are safe for
// concurrent use.
type Registry struct {
	cfg RegistryConfig

	mu       sync.Mutex
	resident map[string]*tenantEntry
	lru      *list.List // front = most recently used
	loading  map[string]*loadCall
	bytes    int64

	stats registryStats
}

// NewRegistry opens a registry over cfg.Dir and publishes the fleet
// counters under the reghd.registry expvar variable (obs.Publish — visible
// on any /metrics endpoint mounted from obs.Handler). No models are loaded
// until their first request.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	info, err := os.Stat(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("reghd: registry dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("reghd: registry dir %q is not a directory", cfg.Dir)
	}
	r := &Registry{
		cfg:      cfg,
		resident: make(map[string]*tenantEntry),
		lru:      list.New(),
		loading:  make(map[string]*loadCall),
	}
	obs.Publish(obs.RegistryVar, func() any { return r.Metrics() })
	return r, nil
}

// ValidTenant reports whether name is a servable tenant key: non-empty,
// no path separators or traversal, no leading dot, and no embedded NUL —
// exactly the names the registry will resolve to <dir>/<name>.gob.
func ValidTenant(name string) bool {
	if name == "" || len(name) > 255 {
		return false
	}
	if strings.HasPrefix(name, ".") {
		return false
	}
	return !strings.ContainsAny(name, "/\\\x00")
}

// Engine routes one tenant key to its serving engine, hot-loading the
// checkpoint on first request and marking the tenant most-recently-used.
// The returned engine stays valid even if the tenant is evicted afterwards
// — holders keep serving from it; new requests reload. Errors wrap
// ErrUnknownTenant (no such checkpoint) or ErrModelLoad (checkpoint exists
// but is unservable).
func (r *Registry) Engine(tenant string) (*Engine, error) {
	if !ValidTenant(tenant) {
		r.stats.unknownTenant.Add(1)
		return nil, fmt.Errorf("%w: invalid tenant key %q", ErrUnknownTenant, tenant)
	}
	r.mu.Lock()
	if e, ok := r.resident[tenant]; ok {
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.stats.routed.Add(1)
		return e.eng, nil
	}
	if lc, ok := r.loading[tenant]; ok {
		r.mu.Unlock()
		r.stats.loadDedup.Add(1)
		<-lc.done
		if lc.err != nil {
			return nil, lc.err
		}
		r.stats.routed.Add(1)
		return lc.eng, nil
	}
	lc := &loadCall{done: make(chan struct{})}
	r.loading[tenant] = lc
	r.mu.Unlock()

	lc.eng, lc.err = r.load(tenant)

	r.mu.Lock()
	delete(r.loading, tenant)
	close(lc.done)
	r.mu.Unlock()
	if lc.err != nil {
		return nil, lc.err
	}
	r.stats.routed.Add(1)
	return lc.eng, nil
}

// load reads one tenant checkpoint, builds its engine, installs it as
// most-recently-used, and evicts down to the budgets. Called without the
// registry lock (file IO and engine construction must not block routing).
func (r *Registry) load(tenant string) (*Engine, error) {
	path := filepath.Join(r.cfg.Dir, tenant+ModelExt)
	if _, err := os.Stat(path); err != nil {
		r.stats.unknownTenant.Add(1)
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	eng, bytes, err := loadEngineFile(path)
	if err != nil {
		r.stats.loadErrors.Add(1)
		return nil, fmt.Errorf("%w: tenant %q: %w", ErrModelLoad, tenant, err)
	}
	if r.cfg.MaxInFlight > 0 {
		eng.SetMaxInFlight(r.cfg.MaxInFlight)
	}
	if r.cfg.PublishEvery != 0 {
		eng.SetPublishEvery(r.cfg.PublishEvery)
	}
	if r.cfg.EngineMetrics {
		eng.EnableMetrics()
	}
	if r.cfg.Coalesce != nil {
		eng.EnableCoalescing(*r.cfg.Coalesce)
	}
	e := &tenantEntry{name: tenant, eng: eng, bytes: bytes, features: eng.Features()}

	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.resident[tenant]; ok {
		// A racing install beat us: keep the installed engine and drop ours
		// so all routed callers converge on one. The dropped engine's
		// coalescer (if any) must be stopped or its dispatcher goroutine
		// would outlive it.
		r.lru.MoveToFront(prev.elem)
		go eng.DisableCoalescing()
		return prev.eng, nil
	}
	r.stats.loads.Add(1)
	e.elem = r.lru.PushFront(e)
	r.resident[tenant] = e
	r.bytes += e.bytes
	r.evictLocked()
	return eng, nil
}

// loadEngineFile builds a serving engine from one checkpoint file: a
// pipeline checkpoint (model + scaler, served in original units) or a bare
// model checkpoint. Returns the engine and the model's deployment bytes —
// the quantity the byte budget accounts.
func loadEngineFile(path string) (*Engine, int64, error) {
	if pipe, perr := LoadPipelineFile(path); perr == nil {
		eng, err := NewPipelineEngine(pipe)
		if err != nil {
			return nil, 0, err
		}
		return eng, int64(pipe.Model().DeploymentBytes()), nil
	} else if m, merr := LoadModelFile(path); merr == nil {
		eng, err := NewEngine(m)
		if err != nil {
			return nil, 0, err
		}
		return eng, int64(m.DeploymentBytes()), nil
	} else {
		// Neither decoded; the pipeline error names the file's failure for
		// the common (reghd-train -save) format.
		return nil, 0, perr
	}
}

// evictLocked removes least-recently-used tenants until both budgets hold,
// never evicting the last resident (a budget smaller than one model still
// serves, one model at a time). Callers must hold r.mu.
func (r *Registry) evictLocked() {
	over := func() bool {
		if r.cfg.MaxResident > 0 && r.lru.Len() > r.cfg.MaxResident {
			return true
		}
		return r.cfg.MaxResidentBytes > 0 && r.bytes > r.cfg.MaxResidentBytes
	}
	for r.lru.Len() > 1 && over() {
		r.removeLocked(r.lru.Back().Value.(*tenantEntry))
	}
}

// removeLocked drops one resident entry and counts the eviction. Callers
// must hold r.mu. The evicted engine keeps serving for in-flight holders —
// its snapshot, scratch pools, and gates are self-contained — but its
// coalescer (if any) is stopped asynchronously so the dispatcher goroutine
// does not outlive the eviction (parked requests drain through the final
// batch or the direct path; none are lost).
func (r *Registry) removeLocked(e *tenantEntry) {
	r.lru.Remove(e.elem)
	delete(r.resident, e.name)
	r.bytes -= e.bytes
	r.stats.evictions.Add(1)
	if e.eng.CoalescingEnabled() {
		go e.eng.DisableCoalescing()
	}
}

// Evict removes one tenant's resident engine, reporting whether it was
// resident. In-flight requests on the evicted engine complete normally;
// the next request for the tenant reloads from disk.
func (r *Registry) Evict(tenant string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.resident[tenant]
	if ok {
		r.removeLocked(e)
	}
	return ok
}

// EvictAll removes every resident engine (counting each as an eviction),
// e.g. to force a fleet-wide reload after replacing checkpoint files.
func (r *Registry) EvictAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.lru.Len() > 0 {
		r.removeLocked(r.lru.Back().Value.(*tenantEntry))
	}
}

// Predict routes one prediction to tenant's engine (hot-loading it if
// needed). Equivalent to Engine(tenant) followed by Engine.Predict.
func (r *Registry) Predict(tenant string, x []float64) (float64, error) {
	return r.PredictCtx(context.Background(), tenant, x)
}

// PredictCtx is Predict with a deadline, routed to Engine.PredictCtx.
func (r *Registry) PredictCtx(ctx context.Context, tenant string, x []float64) (float64, error) {
	eng, err := r.Engine(tenant)
	if err != nil {
		return 0, err
	}
	return eng.PredictCtx(ctx, x)
}

// Resident returns the tenant's engine if it is currently resident,
// without loading it or touching LRU order — the probe /healthz-style
// endpoints want.
func (r *Registry) Resident(tenant string) (*Engine, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.resident[tenant]
	if !ok {
		return nil, false
	}
	return e.eng, true
}

// Features returns the feature arity of a resident tenant's model, or -1
// when the tenant is not resident (the registry will not load a model just
// to describe it).
func (r *Registry) Features(tenant string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.resident[tenant]; ok {
		return e.features
	}
	return -1
}

// Known reports whether a checkpoint file exists for the tenant key — the
// answer routing would give, without loading anything.
func (r *Registry) Known(tenant string) bool {
	if !ValidTenant(tenant) {
		return false
	}
	_, err := os.Stat(filepath.Join(r.cfg.Dir, tenant+ModelExt))
	return err == nil
}

// Tenants lists every tenant key with a checkpoint file in the model
// directory, sorted — the servable catalog, independent of residency.
func (r *Registry) Tenants() ([]string, error) {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name, ok := strings.CutSuffix(de.Name(), ModelExt)
		if ok && ValidTenant(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Residents lists the resident tenants, most recently used first.
func (r *Registry) Residents() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		names = append(names, el.Value.(*tenantEntry).name)
	}
	return names
}

// Metrics snapshots the always-on fleet counters. Cheap enough to poll;
// never blocks routing beyond the bookkeeping lock.
func (r *Registry) Metrics() RegistryMetrics {
	r.mu.Lock()
	residents := r.lru.Len()
	bytes := r.bytes
	r.mu.Unlock()
	return RegistryMetrics{
		Residents:        residents,
		ResidentBytes:    bytes,
		MaxResident:      r.cfg.MaxResident,
		MaxResidentBytes: r.cfg.MaxResidentBytes,
		Loads:            r.stats.loads.Load(),
		LoadDedup:        r.stats.loadDedup.Load(),
		Evictions:        r.stats.evictions.Load(),
		LoadErrors:       r.stats.loadErrors.Load(),
		Routed:           r.stats.routed.Load(),
		UnknownTenant:    r.stats.unknownTenant.Load(),
	}
}
