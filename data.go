package reghd

import (
	"io"

	"reghd/internal/dataset"
	"reghd/internal/synth"
)

// Dataset is an in-memory supervised regression dataset.
type Dataset = dataset.Dataset

// Scaler standardizes features (and optionally the target).
type Scaler = dataset.Scaler

// LoadCSV reads a regression dataset from a CSV file; the last column is
// the target.
func LoadCSV(path, name string, header bool) (*Dataset, error) {
	return dataset.LoadCSV(path, name, header)
}

// ReadCSV parses a regression dataset from a reader.
func ReadCSV(r io.Reader, name string, header bool) (*Dataset, error) {
	return dataset.ReadCSV(r, name, header)
}

// SaveCSV writes a dataset to a CSV file.
func SaveCSV(path string, d *Dataset) error { return dataset.SaveCSV(path, d) }

// FitScaler computes standardization statistics on a training split.
func FitScaler(d *Dataset, scaleTarget bool) (*Scaler, error) {
	return dataset.FitScaler(d, scaleTarget)
}

// MSE returns the mean squared error between predictions and targets.
func MSE(pred, target []float64) (float64, error) { return dataset.MSE(pred, target) }

// RMSE returns the root mean squared error.
func RMSE(pred, target []float64) (float64, error) { return dataset.RMSE(pred, target) }

// MAE returns the mean absolute error.
func MAE(pred, target []float64) (float64, error) { return dataset.MAE(pred, target) }

// R2 returns the coefficient of determination.
func R2(pred, target []float64) (float64, error) { return dataset.R2(pred, target) }

// SyntheticNames lists the built-in synthetic stand-ins for the paper's
// seven evaluation datasets.
func SyntheticNames() []string { return synth.Names() }

// SyntheticDataset deterministically generates one of the built-in
// evaluation datasets ("diabetes", "boston", "airfoil", "wine", "facebook",
// "ccpp", "forest").
func SyntheticDataset(name string, seed int64) (*Dataset, error) {
	return synth.Load(name, seed)
}
