package reghd

import (
	"sync/atomic"
	"time"

	"reghd/internal/core"
	"reghd/internal/obs"
)

// Stage identifies one phase of the prediction pipeline
// (standardize/encode/similarity/readout) for per-stage timing.
type Stage = core.Stage

// Re-exported prediction stages.
const (
	// StageStandardize is feature standardization (pipeline scaler).
	StageStandardize = core.StageStandardize
	// StageEncode is the Eq. 1 hyperdimensional encoding plus bit-packing.
	StageEncode = core.StageEncode
	// StageSimilarity is the cluster similarity search and softmax (Eq. 5).
	StageSimilarity = core.StageSimilarity
	// StageReadout is the per-model dots, blending, and calibration (Eq. 6).
	StageReadout = core.StageReadout
)

// StageTimes accumulates per-stage prediction wall time with atomic adds;
// install one with Pipeline.EnableStageTiming (Engine.EnableMetrics wires
// its own). Safe for concurrent recording and summarizing.
type StageTimes = core.StageTimes

// StageStat is the accumulated cost of one prediction stage.
type StageStat = core.StageStat

// StageSummary reports every prediction stage's accumulated cost.
type StageSummary = core.StageSummary

// OpSummary is the latency/throughput/error digest of one engine operation.
type OpSummary = obs.OpSummary

// SnapshotMetrics gauges how stale the published snapshot is relative to
// the live model the writer keeps training.
type SnapshotMetrics struct {
	// UpdatesSincePublish is the number of PartialFit updates absorbed by
	// the live model that the published snapshot does not yet reflect —
	// the publish lag in samples. Publish (explicit or automatic) resets
	// it to zero.
	UpdatesSincePublish int64 `json:"updates_since_publish"`
	// AgeSeconds is the wall time since the current snapshot was
	// published.
	AgeSeconds float64 `json:"age_s"`
	// Publishes counts snapshot publications since metrics were enabled
	// (EnableMetrics itself republishes once, so this starts at 1).
	Publishes uint64 `json:"publishes"`
}

// EngineMetrics is the plain-struct view of an engine's serving metrics,
// returned by Engine.Metrics and JSON-marshaled by the /metrics endpoint
// (see docs/OBSERVABILITY.md for the full metric reference). All latency
// fields are nanoseconds; quantiles carry the histogram's ±6.25% bucket
// error while means and maxima are exact.
type EngineMetrics struct {
	// Enabled reports whether EnableMetrics has been called; every other
	// field except Robustness is zero until then.
	Enabled bool `json:"enabled"`
	// UptimeSeconds is the observation window (time since EnableMetrics)
	// that the RatePerSec throughput fields are computed over.
	UptimeSeconds float64 `json:"uptime_s"`
	// Predict, PredictBatch, and PartialFit digest the latency, throughput,
	// and errors of the corresponding engine methods. PredictBatch times
	// whole calls, not rows.
	Predict      OpSummary `json:"predict"`
	PredictBatch OpSummary `json:"predict_batch"`
	// PredictBatchRows is the total number of rows served through
	// PredictBatch calls (Predict.Count + PredictBatchRows = predictions
	// served).
	PredictBatchRows uint64    `json:"predict_batch_rows"`
	PartialFit       OpSummary `json:"partial_fit"`
	// Stages breaks serving latency down by prediction stage so a
	// regression localizes: standardize (scaler), encode, similarity,
	// readout. Stage totals accumulate across snapshot republications.
	Stages StageSummary `json:"stages"`
	// EncodeRowsPerSec is the encode-stage throughput: rows encoded per
	// second of wall time actually spent encoding (stage calls over stage
	// total time, not over uptime). It gauges the encoding kernels'
	// capacity — the ceiling on serving throughput when encode dominates —
	// independent of how idle the engine is. Zero until the encode stage
	// has run.
	EncodeRowsPerSec float64 `json:"encode_rows_per_sec"`
	// Snapshot gauges publication staleness.
	Snapshot SnapshotMetrics `json:"snapshot"`
	// Robustness carries the hardening counters (shed/panic/invalid
	// counts, degraded mode, admission gate, publish sequence). Unlike the
	// latency metrics these are recorded always, not only after
	// EnableMetrics.
	Robustness RobustnessMetrics `json:"robustness"`
	// Coalesce carries the request-coalescing counters (batch sizes, window
	// waits, fallbacks). Like Robustness these are recorded always, not only
	// after EnableMetrics.
	Coalesce CoalesceMetrics `json:"coalesce"`
}

// CoalesceMetrics is the request coalescer's counter block, reported under
// EngineMetrics.Coalesce (metric namespace reghd.engine.coalesce, see
// docs/OBSERVABILITY.md). Counters accumulate across EnableCoalescing /
// DisableCoalescing cycles and are recorded regardless of EnableMetrics.
type CoalesceMetrics struct {
	// Enabled reports whether request coalescing is currently on.
	Enabled bool `json:"enabled"`
	// Batches is the number of coalesced batches dispatched.
	Batches uint64 `json:"batches"`
	// Rows is the total number of single-row predictions served through
	// coalesced batches; Rows/Batches is the exact mean batch size.
	Rows uint64 `json:"rows"`
	// Fallbacks counts requests served through the direct path while
	// coalescing was on (window queue full, or a request caught in a
	// DisableCoalescing shutdown race).
	Fallbacks uint64 `json:"fallbacks"`
	// BatchSizeMean is the exact mean rows per dispatched batch; the
	// quantiles and max digest the batch-size distribution with the
	// histogram's ±6.25% bucket error (max is exact).
	BatchSizeMean float64 `json:"batch_size_mean"`
	BatchSizeP50  int64   `json:"batch_size_p50"`
	BatchSizeP99  int64   `json:"batch_size_p99"`
	BatchSizeMax  int64   `json:"batch_size_max"`
	// WindowWaitMeanNS, WindowWaitP99NS, and WindowWaitMaxNS digest how long
	// dispatched windows stayed open collecting requests, in nanoseconds
	// (mean and max exact, P99 within bucket error).
	WindowWaitMeanNS int64 `json:"window_wait_mean_ns"`
	WindowWaitP99NS  int64 `json:"window_wait_p99_ns"`
	WindowWaitMaxNS  int64 `json:"window_wait_max_ns"`
}

// coalesceMetrics snapshots the always-on coalescing counters.
func (e *Engine) coalesceMetrics() CoalesceMetrics {
	cs := &e.coalStats
	m := CoalesceMetrics{
		Enabled:   e.coal.Load() != nil,
		Batches:   cs.batches.Load(),
		Rows:      cs.rows.Load(),
		Fallbacks: cs.fallbacks.Load(),
	}
	if m.Batches > 0 {
		m.BatchSizeMean = float64(m.Rows) / float64(m.Batches)
	}
	sizes := cs.sizes.Snapshot()
	m.BatchSizeP50 = int64(sizes.Quantile(0.50))
	m.BatchSizeP99 = int64(sizes.Quantile(0.99))
	m.BatchSizeMax = sizes.MaxNS
	waits := cs.waits.Snapshot()
	m.WindowWaitMeanNS = int64(waits.Mean())
	m.WindowWaitP99NS = int64(waits.Quantile(0.99))
	m.WindowWaitMaxNS = waits.MaxNS
	return m
}

// serveStats is the engine's live instrumentation, reached through an
// atomic pointer so the serving hot path pays exactly one pointer load when
// metrics are off.
type serveStats struct {
	start time.Time

	predict      obs.OpStats
	predictBatch obs.OpStats
	batchRows    atomic.Uint64
	partialFit   obs.OpStats
	stages       core.StageTimes

	publishes           atomic.Uint64
	updatesSincePublish atomic.Int64
	lastPublishNS       atomic.Int64
}

// EnableMetrics turns on serving instrumentation: latency histograms and
// error counters around Predict/PredictBatch/PartialFit, per-stage
// prediction timing, and snapshot-staleness gauges. It republishes once so
// the published snapshot starts recording stage times. Idempotent; safe to
// call while serving. Read the results with Metrics.
//
// Overhead is two timestamps plus a few atomic adds per call — well under
// a microsecond against encode-dominated predictions (see
// BenchmarkEnginePredictMetricsOn/Off).
func (e *Engine) EnableMetrics() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stats.Load() != nil {
		return
	}
	st := &serveStats{start: time.Now()}
	st.lastPublishNS.Store(time.Now().UnixNano())
	e.stats.Store(st)
	e.publishLocked()
}

// MetricsEnabled reports whether EnableMetrics has been called.
func (e *Engine) MetricsEnabled() bool { return e.stats.Load() != nil }

// Metrics returns the current serving metrics as a plain struct. Cheap
// enough to poll: it snapshots the histograms without blocking serving (and
// without taking the writer lock). Before EnableMetrics it returns the zero
// struct with Enabled == false.
func (e *Engine) Metrics() EngineMetrics {
	st := e.stats.Load()
	if st == nil {
		return EngineMetrics{Robustness: e.robustness(), Coalesce: e.coalesceMetrics()}
	}
	elapsed := time.Since(st.start)
	encode := st.stages.Stat(core.StageEncode)
	var encodeRate float64
	if encode.TotalNS > 0 {
		encodeRate = float64(encode.Calls) / (float64(encode.TotalNS) * 1e-9)
	}
	return EngineMetrics{
		Enabled:          true,
		UptimeSeconds:    elapsed.Seconds(),
		Predict:          st.predict.Summary(elapsed),
		PredictBatch:     st.predictBatch.Summary(elapsed),
		PredictBatchRows: st.batchRows.Load(),
		PartialFit:       st.partialFit.Summary(elapsed),
		Stages:           st.stages.Summary(),
		EncodeRowsPerSec: encodeRate,
		Snapshot: SnapshotMetrics{
			UpdatesSincePublish: st.updatesSincePublish.Load(),
			AgeSeconds:          time.Since(time.Unix(0, st.lastPublishNS.Load())).Seconds(),
			Publishes:           st.publishes.Load(),
		},
		Robustness: e.robustness(),
		Coalesce:   e.coalesceMetrics(),
	}
}
