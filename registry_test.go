package reghd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// fleetDir trains count small tenant pipelines into a temp dir and returns
// the dir, the tenant names, and a directly loaded reference engine per
// tenant (what registry-routed predictions must be bit-identical to).
func fleetDir(t *testing.T, count int) (string, []string, map[string]*Engine) {
	t.Helper()
	dir := t.TempDir()
	names := make([]string, count)
	direct := make(map[string]*Engine, count)
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		names[i] = name
		data := makeData(int64(100+i), 120)
		enc, err := NewEncoder(2, 128, int64(7+i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Epochs = 2
		m, err := NewModel(enc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pipe := NewPipeline(m)
		if _, err := pipe.Fit(data); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+ModelExt)
		if err := pipe.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		ref, err := LoadPipelineFile(path)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewPipelineEngine(ref)
		if err != nil {
			t.Fatal(err)
		}
		direct[name] = eng
	}
	return dir, names, direct
}

func TestRegistryRoutesBitIdentical(t *testing.T) {
	dir, names, direct := fleetDir(t, 3)
	reg, err := NewRegistry(RegistryConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	queries := makeData(999, 10)
	for _, name := range names {
		for _, x := range queries.X {
			want, err := direct[name].Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := reg.Predict(name, x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("tenant %s: registry %v != direct %v", name, got, want)
			}
		}
	}
	m := reg.Metrics()
	if m.Loads != 3 || m.Residents != 3 {
		t.Fatalf("expected 3 loads / 3 residents, got %+v", m)
	}
	if m.Routed != uint64(len(names)*len(queries.X)) {
		t.Fatalf("routed = %d, want %d", m.Routed, len(names)*len(queries.X))
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	dir, names, _ := fleetDir(t, 4)
	reg, err := NewRegistry(RegistryConfig{Dir: dir, MaxResident: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.3}
	// Load 0, 1 — resident {1, 0}. Touch 0 — {0, 1}. Load 2 — evicts 1.
	for _, i := range []int{0, 1, 0, 2} {
		if _, err := reg.Predict(names[i], x); err != nil {
			t.Fatal(err)
		}
	}
	res := reg.Residents()
	if len(res) != 2 || res[0] != names[2] || res[1] != names[0] {
		t.Fatalf("residents = %v, want [%s %s]", res, names[2], names[0])
	}
	m := reg.Metrics()
	if m.Evictions != 1 || m.Loads != 3 || m.Residents != 2 {
		t.Fatalf("metrics after eviction: %+v", m)
	}
	// The evicted tenant reloads on demand.
	if _, err := reg.Predict(names[1], x); err != nil {
		t.Fatal(err)
	}
	if m := reg.Metrics(); m.Loads != 4 || m.Evictions != 2 {
		t.Fatalf("metrics after reload: %+v", m)
	}
}

func TestRegistryByteBudget(t *testing.T) {
	dir, names, _ := fleetDir(t, 3)
	// Learn one model's cost, then budget for roughly two.
	reg0, err := NewRegistry(RegistryConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, 0.4}
	if _, err := reg0.Predict(names[0], x); err != nil {
		t.Fatal(err)
	}
	per := reg0.Metrics().ResidentBytes
	if per <= 0 {
		t.Fatalf("per-model bytes = %d", per)
	}
	reg, err := NewRegistry(RegistryConfig{Dir: dir, MaxResidentBytes: 2 * per})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := reg.Predict(n, x); err != nil {
			t.Fatal(err)
		}
	}
	m := reg.Metrics()
	if m.ResidentBytes > 2*per {
		t.Fatalf("resident bytes %d over budget %d", m.ResidentBytes, 2*per)
	}
	if m.Residents != 2 || m.Evictions != 1 {
		t.Fatalf("metrics under byte budget: %+v", m)
	}
	// A budget below one model still serves, one model at a time.
	tiny, err := NewRegistry(RegistryConfig{Dir: dir, MaxResidentBytes: per / 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := tiny.Predict(n, x); err != nil {
			t.Fatal(err)
		}
	}
	if m := tiny.Metrics(); m.Residents != 1 {
		t.Fatalf("sub-model budget kept %d residents", m.Residents)
	}
}

func TestRegistryUnknownTenant(t *testing.T) {
	dir, names, _ := fleetDir(t, 1)
	reg, err := NewRegistry(RegistryConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"nope", "../escape", "a/b", "", ".hidden"} {
		if _, err := reg.Predict(bad, []float64{1, 2}); !errors.Is(err, ErrUnknownTenant) {
			t.Fatalf("tenant %q: want ErrUnknownTenant, got %v", bad, err)
		}
	}
	if m := reg.Metrics(); m.UnknownTenant != 5 || m.LoadErrors != 0 {
		t.Fatalf("unknown-tenant metrics: %+v", m)
	}
	// Unknown is not negatively cached: a tenant uploaded later serves.
	src, err := os.ReadFile(filepath.Join(dir, names[0]+ModelExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "late"+ModelExt), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Predict("late", []float64{1, 2}); err != nil {
		t.Fatalf("late-uploaded tenant: %v", err)
	}
}

func TestRegistryCorruptModelFile(t *testing.T) {
	dir, names, _ := fleetDir(t, 1)
	bad := filepath.Join(dir, "broken"+ModelExt)
	if err := os.WriteFile(bad, []byte("this is not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(RegistryConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, err = reg.Predict("broken", []float64{1, 2})
	if !errors.Is(err, ErrModelLoad) {
		t.Fatalf("want ErrModelLoad, got %v", err)
	}
	if errors.Is(err, ErrUnknownTenant) {
		t.Fatal("load failure must not read as unknown tenant")
	}
	if m := reg.Metrics(); m.LoadErrors != 1 || m.Residents != 0 {
		t.Fatalf("load-error metrics: %+v", m)
	}
	// Errors are not cached: replacing the file with a good checkpoint
	// makes the tenant servable.
	src, err := os.ReadFile(filepath.Join(dir, names[0]+ModelExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Predict("broken", []float64{1, 2}); err != nil {
		t.Fatalf("repaired tenant: %v", err)
	}
}

func TestRegistryLoadDedup(t *testing.T) {
	dir, names, _ := fleetDir(t, 1)
	reg, err := NewRegistry(RegistryConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 16
	var wg sync.WaitGroup
	engines := make([]*Engine, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng, err := reg.Engine(names[0])
			if err != nil {
				t.Error(err)
				return
			}
			engines[i] = eng
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if engines[i] != engines[0] {
			t.Fatal("concurrent first requests resolved to different engines")
		}
	}
	if m := reg.Metrics(); m.Loads != 1 {
		t.Fatalf("loads = %d, want 1 (singleflight)", m.Loads)
	}
}

// TestRegistryEvictionInFlightStress is the eviction-vs-in-flight safety
// stress: tenants are evicted (by LRU churn under a tight budget AND by an
// explicit random evictor) while readers hammer the fleet, and every
// response must stay bit-identical to the tenant's direct engine. Run under
// -race this also proves eviction never races the serving path.
func TestRegistryEvictionInFlightStress(t *testing.T) {
	const tenants = 8
	dir, names, direct := fleetDir(t, tenants)
	reg, err := NewRegistry(RegistryConfig{Dir: dir, MaxResident: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := makeData(4242, 16)
	want := make(map[string][]uint64, tenants)
	for _, n := range names {
		bits := make([]uint64, len(queries.X))
		for i, x := range queries.X {
			y, err := direct[n].Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			bits[i] = math.Float64bits(y)
		}
		want[n] = bits
	}

	var stop atomic.Bool
	var served atomic.Uint64
	var wg sync.WaitGroup
	const readers = 8
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, 1.2, 1, tenants-1)
			for !stop.Load() {
				n := names[zipf.Uint64()]
				qi := rng.Intn(len(queries.X))
				y, err := reg.Predict(n, queries.X[qi])
				if err != nil {
					t.Errorf("predict %s: %v", n, err)
					return
				}
				if math.Float64bits(y) != want[n][qi] {
					t.Errorf("tenant %s query %d: %v != direct", n, qi, y)
					return
				}
				served.Add(1)
			}
		}(int64(1000 + r))
	}
	// Evictor: random explicit evictions concurrent with the LRU churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for !stop.Load() {
			reg.Evict(names[rng.Intn(tenants)])
		}
	}()
	for served.Load() < 4000 && !t.Failed() {
	}
	stop.Store(true)
	wg.Wait()

	m := reg.Metrics()
	if m.Evictions == 0 {
		t.Fatal("stress ran without a single eviction")
	}
	if m.Loads <= tenants {
		t.Fatalf("loads = %d; expected reloads beyond the initial %d", m.Loads, tenants)
	}
	if m.Residents > 3 {
		t.Fatalf("residents = %d over budget 3", m.Residents)
	}
	t.Logf("served %d, loads %d, evictions %d, dedup %d",
		served.Load(), m.Loads, m.Evictions, m.LoadDedup)
}

func TestRegistryPerTenantAdmissionGate(t *testing.T) {
	dir, names, _ := fleetDir(t, 2)
	reg, err := NewRegistry(RegistryConfig{Dir: dir, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := reg.Engine(names[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Engine(names[1])
	if err != nil {
		t.Fatal(err)
	}
	// Fill tenant a's gate from the outside; tenant b must be unaffected.
	if !a.acquire() {
		t.Fatal("gate slot")
	}
	defer a.release()
	if _, err := a.Predict([]float64{1, 2}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated tenant: want ErrOverloaded, got %v", err)
	}
	if _, err := b.Predict([]float64{1, 2}); err != nil {
		t.Fatalf("sibling tenant starved: %v", err)
	}
}

func TestRegistryTenantsAndResidents(t *testing.T) {
	dir, names, _ := fleetDir(t, 3)
	// Non-model files and subdirectories are not tenants.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.gob"), 0o755); err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(RegistryConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := reg.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != names[0] || got[2] != names[2] {
		t.Fatalf("tenants = %v", got)
	}
	if !reg.Known(names[1]) || reg.Known("nope") {
		t.Fatal("Known wrong")
	}
	if f := reg.Features(names[0]); f != -1 {
		t.Fatalf("non-resident features = %d, want -1", f)
	}
	if _, err := reg.Predict(names[0], []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if f := reg.Features(names[0]); f != 2 {
		t.Fatalf("resident features = %d, want 2", f)
	}
	reg.EvictAll()
	if m := reg.Metrics(); m.Residents != 0 || m.ResidentBytes != 0 {
		t.Fatalf("after EvictAll: %+v", m)
	}
}

func TestNewRegistryBadDir(t *testing.T) {
	if _, err := NewRegistry(RegistryConfig{Dir: filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing dir accepted")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(RegistryConfig{Dir: f}); err == nil {
		t.Fatal("non-directory accepted")
	}
}
