package reghd

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"reghd/internal/hdc"
)

// hardenFixture returns a pipeline engine over the serve fixture.
func hardenFixture(t *testing.T) (*Engine, *Dataset) {
	t.Helper()
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

// TestEnginePredictValidation: malformed requests are rejected with
// ErrInvalidInput before any serving work, for both single and batch paths.
func TestEnginePredictValidation(t *testing.T) {
	e, d := hardenFixture(t)
	bad := [][]float64{
		nil,
		{1},
		append(append([]float64(nil), d.X[0]...), 1),
		{math.NaN(), 1, 1, 1},
		{1, math.Inf(1), 1, 1},
	}
	for i, x := range bad {
		if _, err := e.Predict(x); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("bad input %d: err = %v, want ErrInvalidInput", i, err)
		}
	}
	// Batch rejection names the offending row.
	xs := [][]float64{d.X[0], {math.NaN(), 1, 1, 1}}
	if _, err := e.PredictBatch(xs); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("batch err = %v, want ErrInvalidInput", err)
	}
	if got := e.Metrics().Robustness.InvalidInputs; got != uint64(len(bad))+1 {
		t.Fatalf("invalid_inputs = %d, want %d", got, len(bad)+1)
	}
	// PartialFit rejects bad samples without touching cluster state.
	before, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PartialFit(d.X[0], math.NaN()); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("NaN target: err = %v, want ErrInvalidInput", err)
	}
	if err := e.PartialFit([]float64{1}, 1); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("short sample: err = %v, want ErrInvalidInput", err)
	}
	if err := e.Publish(); err != nil {
		t.Fatal(err)
	}
	after, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("rejected samples moved the model: %v -> %v", before, after)
	}
}

// TestEngineAdmissionGate: SetMaxInFlight bounds concurrent predictions;
// excess requests shed with ErrOverloaded and never reach the latency
// digest.
func TestEngineAdmissionGate(t *testing.T) {
	e, d := hardenFixture(t)
	e.EnableMetrics()
	e.SetMaxInFlight(1)
	if !e.acquire() {
		t.Fatal("gate rejected the first request")
	}
	if _, err := e.Predict(d.X[0]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full gate: err = %v, want ErrOverloaded", err)
	}
	if _, err := e.PredictBatch(d.X[:4]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full gate batch: err = %v, want ErrOverloaded", err)
	}
	e.release()
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatalf("freed gate: %v", err)
	}
	m := e.Metrics()
	if m.Robustness.RequestsShed != 2 {
		t.Fatalf("requests_shed = %d, want 2", m.Robustness.RequestsShed)
	}
	if m.Predict.Count != 1 || m.Predict.Errors != 0 {
		t.Fatalf("shed requests reached the digest: count/errors = %d/%d", m.Predict.Count, m.Predict.Errors)
	}
	e.SetMaxInFlight(0)
	if !e.acquire() || !e.acquire() {
		t.Fatal("unlimited gate rejected")
	}
	e.release()
	e.release()
}

// TestEnginePredictCtx: expired deadlines are rejected up front, and
// cancelling mid-batch stops the remaining rows.
func TestEnginePredictCtx(t *testing.T) {
	e, d := hardenFixture(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.PredictCtx(cancelled, d.X[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled predict: err = %v", err)
	}
	if _, err := e.PredictBatchCtx(cancelled, d.X[:8]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: err = %v", err)
	}
	if _, err := e.PredictBatchCtx(context.Background(), d.X[:8]); err != nil {
		t.Fatalf("live batch: %v", err)
	}
}

// TestEngineDegradedMode: a republish failure mid-stream drops the engine
// into degraded mode — readers keep serving the last known-good snapshot,
// automatic republication is suspended — and a successful explicit Publish
// recovers it.
func TestEngineDegradedMode(t *testing.T) {
	e, d := hardenFixture(t)
	e.SetPublishEvery(2)
	boom := errors.New("publish blew up")
	e.setPublishFailpoint(func() error { return boom })

	seqBefore := e.PublishSeq()
	yBefore, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}

	// Stream until the automatic republication trips the failpoint.
	var sawErr error
	for i := 0; i < 4 && sawErr == nil; i++ {
		sawErr = e.PartialFit(d.X[i], d.Y[i])
	}
	if !errors.Is(sawErr, boom) {
		t.Fatalf("republish failure not surfaced: %v", sawErr)
	}
	if !e.Degraded() {
		t.Fatal("engine not degraded after republish failure")
	}
	if e.PublishSeq() != seqBefore {
		t.Fatalf("failed republish moved the sequence: %d -> %d", seqBefore, e.PublishSeq())
	}
	// Last known-good snapshot keeps serving, bit-identically.
	if y, err := e.Predict(d.X[0]); err != nil || y != yBefore {
		t.Fatalf("degraded serving changed: y=%v err=%v, want %v", y, err, yBefore)
	}
	// While degraded, further updates are absorbed but never auto-published.
	for i := 0; i < 6; i++ {
		if err := e.PartialFit(d.X[i], d.Y[i]); err != nil {
			t.Fatalf("degraded PartialFit: %v", err)
		}
	}
	if e.PublishSeq() != seqBefore {
		t.Fatal("degraded engine auto-republished")
	}
	// Publish still failing keeps it degraded.
	if err := e.Publish(); !errors.Is(err, boom) {
		t.Fatalf("Publish err = %v, want failpoint error", err)
	}
	if !e.Degraded() {
		t.Fatal("failed Publish cleared degraded mode")
	}
	// Clearing the failpoint and publishing recovers.
	e.setPublishFailpoint(nil)
	if err := e.Publish(); err != nil {
		t.Fatal(err)
	}
	if e.Degraded() {
		t.Fatal("successful Publish left engine degraded")
	}
	if e.PublishSeq() != seqBefore+1 {
		t.Fatalf("recovery publish sequence = %d, want %d", e.PublishSeq(), seqBefore+1)
	}
	if m := e.Metrics(); m.Robustness.DegradedMode {
		t.Fatal("metrics still report degraded")
	}
}

// TestEngineDegradedRepeatedFailures pins the recovery contract when the
// publish path fails more than once: every retry actually reaches the
// failpoint (no latched failure state short-circuiting the attempt), the
// engine stays degraded and keeps serving the last known-good snapshot
// bit-identically through the whole window, and the first successful
// republish clears degraded mode with exactly one sequence step, carrying
// every update absorbed while degraded.
func TestEngineDegradedRepeatedFailures(t *testing.T) {
	e, d := hardenFixture(t)
	e.SetPublishEvery(2)
	boom := errors.New("publish still down")
	var attempts int
	e.setPublishFailpoint(func() error {
		attempts++
		return boom
	})

	seqBefore := e.PublishSeq()
	yBefore, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}

	// First failure: the automatic republication trips the failpoint.
	var sawErr error
	for i := 0; i < 4 && sawErr == nil; i++ {
		sawErr = e.PartialFit(d.X[i], d.Y[i])
	}
	if !errors.Is(sawErr, boom) {
		t.Fatalf("republish failure not surfaced: %v", sawErr)
	}

	// Repeated recovery attempts keep failing; each one must reach the
	// failpoint anew and leave the serving state untouched.
	const extraAttempts = 5
	attemptsAfterFirst := attempts
	for i := 0; i < extraAttempts; i++ {
		if err := e.PartialFit(d.X[i%len(d.X)], d.Y[i%len(d.Y)]); err != nil {
			t.Fatalf("degraded PartialFit %d: %v", i, err)
		}
		if err := e.Publish(); !errors.Is(err, boom) {
			t.Fatalf("Publish attempt %d: err = %v, want failpoint error", i, err)
		}
		if !e.Degraded() {
			t.Fatalf("attempt %d cleared degraded mode without a successful publish", i)
		}
		if e.PublishSeq() != seqBefore {
			t.Fatalf("attempt %d moved the sequence: %d -> %d", i, seqBefore, e.PublishSeq())
		}
		if y, err := e.Predict(d.X[0]); err != nil || y != yBefore {
			t.Fatalf("attempt %d changed degraded serving: y=%v err=%v, want %v", i, y, err, yBefore)
		}
	}
	if attempts != attemptsAfterFirst+extraAttempts {
		t.Fatalf("failpoint reached %d times after the first failure, want %d (a retry was short-circuited)",
			attempts-attemptsAfterFirst, extraAttempts)
	}

	// Recovery: the failpoint heals and one successful republish restores
	// normal serving with a single sequence step.
	degradedSnap := e.Snapshot()
	e.setPublishFailpoint(nil)
	if err := e.Publish(); err != nil {
		t.Fatal(err)
	}
	if e.Degraded() {
		t.Fatal("successful Publish left engine degraded")
	}
	if e.PublishSeq() != seqBefore+1 {
		t.Fatalf("recovery publish sequence = %d, want %d", e.PublishSeq(), seqBefore+1)
	}
	if m := e.Metrics(); m.Robustness.DegradedMode {
		t.Fatal("metrics still report degraded")
	}
	// The republish swapped in a fresh snapshot (carrying the
	// degraded-window updates) rather than re-serving the stale one.
	if e.Snapshot() == degradedSnap {
		t.Fatal("recovery publish kept serving the degraded-window snapshot")
	}
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatalf("recovered serving failed: %v", err)
	}
}

// TestEngineChaos is the satellite-3 stress test: readers hammer the engine
// while the writer streams a mix of good samples, invalid samples, and
// intermittent republish failures that flip the engine in and out of
// degraded mode. Run under -race (make chaos). Invariants:
//
//   - no request ever panics the process or deadlocks;
//   - every admitted prediction over valid input succeeds and is finite
//     (no torn snapshot);
//   - the publish sequence observed by any reader never decreases.
func TestEngineChaos(t *testing.T) {
	e, d := hardenFixture(t)
	e.EnableMetrics()
	e.SetPublishEvery(4)
	e.SetMaxInFlight(64)

	// failNext arms the failpoint intermittently; the writer goroutine owns
	// the arming, the engine calls it under its own lock.
	var failNext atomic.Bool
	boom := errors.New("chaos publish failure")
	e.setPublishFailpoint(func() error {
		if failNext.Load() {
			return boom
		}
		return nil
	})

	const (
		readers    = 4
		iterations = 300
	)
	var wg sync.WaitGroup
	var torn atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lastSeq := uint64(0)
			for i := 0; i < iterations; i++ {
				if seq := e.PublishSeq(); seq < lastSeq {
					torn.Add(1)
					return
				} else {
					lastSeq = seq
				}
				switch rng.Intn(3) {
				case 0:
					y, err := e.Predict(d.X[rng.Intn(len(d.X))])
					if errors.Is(err, ErrOverloaded) {
						continue
					}
					if err != nil || math.IsNaN(y) || math.IsInf(y, 0) {
						torn.Add(1)
						return
					}
				case 1:
					lo := rng.Intn(len(d.X) - 8)
					ys, err := e.PredictBatch(d.X[lo : lo+8])
					if errors.Is(err, ErrOverloaded) {
						continue
					}
					if err != nil {
						torn.Add(1)
						return
					}
					for _, y := range ys {
						if math.IsNaN(y) || math.IsInf(y, 0) {
							torn.Add(1)
							return
						}
					}
				default:
					_ = e.Metrics()
					_ = e.Snapshot()
				}
			}
		}(int64(1000 + r))
	}

	// The writer streams samples, poisons every 7th with NaN, arms the
	// failpoint every 50 updates, and recovers with Publish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iterations*2; i++ {
			x, y := d.X[i%len(d.X)], d.Y[i%len(d.Y)]
			switch {
			case i%7 == 3:
				if err := e.PartialFit(x, math.NaN()); !errors.Is(err, ErrInvalidInput) {
					t.Errorf("NaN target accepted: %v", err)
					return
				}
			default:
				err := e.PartialFit(x, y)
				if err != nil && !errors.Is(err, boom) {
					t.Errorf("writer: %v", err)
					return
				}
			}
			if i%50 == 10 {
				failNext.Store(true)
			}
			if i%50 == 30 {
				failNext.Store(false)
				if err := e.Publish(); err != nil {
					t.Errorf("recovery publish: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d readers observed a torn/invalid serving state", torn.Load())
	}
	// The stream ends recovered: a final publish must succeed and serving
	// must be clean.
	failNext.Store(false)
	if err := e.Publish(); err != nil {
		t.Fatal(err)
	}
	if e.Degraded() {
		t.Fatal("engine left degraded after recovery")
	}
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Robustness.InvalidInputs == 0 {
		t.Fatal("chaos stream recorded no invalid inputs")
	}
	if m.Robustness.PublishSeq == 0 {
		t.Fatal("no publications recorded")
	}
}

// TestEnginePanicContainment: concurrent requests against a poisoned
// snapshot all fail with PanicError — none escape, none take down siblings
// — and Update with repaired state restores service.
func TestEnginePanicContainment(t *testing.T) {
	e, d := hardenFixture(t)
	var good hdc.Vector
	if err := e.Update(func(m *Model) error {
		fv := m.FaultView()
		good = fv.Models[0]
		fv.Models[0] = fv.Models[0][:4]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var escaped atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var pe *PanicError
				if _, err := e.Predict(d.X[i%len(d.X)]); !errors.As(err, &pe) {
					escaped.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if escaped.Load() != 0 {
		t.Fatalf("%d goroutines saw a non-PanicError result from poisoned state", escaped.Load())
	}
	if got := e.Metrics().Robustness.PanicsRecovered; got != 80 {
		t.Fatalf("panics_recovered = %d, want 80", got)
	}
	if err := e.Update(func(m *Model) error {
		m.FaultView().Models[0] = good
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatalf("repaired engine: %v", err)
	}
}
