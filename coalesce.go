package reghd

import (
	"context"
	"sync/atomic"
	"time"

	"reghd/internal/obs"
)

// This file is the engine's request coalescer: dynamic micro-batching for
// single-row traffic. Concurrent Predict/PredictCtx calls are collected into
// a bounded window (a maximum batch size and a maximum hold time) and
// executed as one batch against the published snapshot, so heavy single-row
// traffic gets the batch path's economics — one snapshot resolution, one
// scratch checkout per worker, contiguous standardization — instead of
// paying the per-call fixed costs once per row. Per-caller semantics are
// preserved: each caller is validated and admitted through the in-flight
// gate individually, observes its own context cancellation, and receives its
// own result or error; a cancelled batchmate never fails the others.

// DefaultCoalesceMaxBatch is the default bound on how many single-row
// requests one coalesced batch may carry.
const DefaultCoalesceMaxBatch = 32

// DefaultCoalesceMaxWait is the default bound on how long the dispatcher
// holds an open window to let more requests join. It is sized well under a
// single D=4096 encode, so the added latency stays a small fraction of the
// work it amortizes.
const DefaultCoalesceMaxWait = 100 * time.Microsecond

// CoalesceConfig configures EnableCoalescing.
type CoalesceConfig struct {
	// MaxBatch bounds the rows per coalesced batch; <= 0 means
	// DefaultCoalesceMaxBatch.
	MaxBatch int
	// MaxWait bounds how long an open window waits for more requests: 0
	// means DefaultCoalesceMaxWait, negative disables waiting entirely (the
	// dispatcher batches only what has already queued — lowest added
	// latency, batches form only under backlog).
	MaxWait time.Duration
}

// coalesceStats are the always-on coalescing counters, kept on the Engine
// (not the coalescer) so they survive enable/disable cycles, like
// robustStats.
type coalesceStats struct {
	batches   atomic.Uint64
	rows      atomic.Uint64
	fallbacks atomic.Uint64
	sizes     obs.Histogram // batch sizes, recorded as row counts
	waits     obs.Histogram // window hold time per dispatched batch
}

// coalescer owns the request queue and the dispatcher goroutine. Immutable
// after construction; stopping is signalled through the stop channel and
// acknowledged through stopped.
type coalescer struct {
	e        *Engine
	maxBatch int
	maxWait  time.Duration
	reqs     chan *coalReq
	stop     chan struct{} // closed by DisableCoalescing
	stopped  chan struct{} // closed when the dispatcher has exited
}

// coalReq is one caller's parked request.
type coalReq struct {
	ctx context.Context
	x   []float64
	out chan coalResult // buffered 1: the dispatcher never blocks on delivery
}

type coalResult struct {
	y   float64
	err error
}

// EnableCoalescing turns on request coalescing: subsequent Predict and
// PredictCtx calls are micro-batched through a dispatcher goroutine within
// cfg's window. Validation, admission control, metrics, and panic
// containment keep their per-caller semantics; results are bit-identical to
// the direct path (every row is served by the same snapshot Predict kernel).
// Calling it again replaces the configuration. Safe to call while serving.
func (e *Engine) EnableCoalescing(cfg CoalesceConfig) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultCoalesceMaxBatch
	}
	switch {
	case cfg.MaxWait == 0:
		cfg.MaxWait = DefaultCoalesceMaxWait
	case cfg.MaxWait < 0:
		cfg.MaxWait = 0
	}
	c := &coalescer{
		e:        e,
		maxBatch: cfg.MaxBatch,
		maxWait:  cfg.MaxWait,
		// Queue a few windows' worth so bursts park instead of falling back.
		reqs:    make(chan *coalReq, 4*cfg.MaxBatch),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stopCoalescerLocked()
	e.coal.Store(c)
	go c.run()
}

// DisableCoalescing stops the dispatcher and routes subsequent predictions
// through the direct path again. Requests parked at the moment of the switch
// are either served by the dispatcher's final batch or fall back to the
// direct path; none are lost. Safe to call while serving; no-op when
// coalescing is off.
func (e *Engine) DisableCoalescing() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stopCoalescerLocked()
}

// stopCoalescerLocked unpublishes and stops the current coalescer, waiting
// for its dispatcher to exit. Callers must hold e.mu.
func (e *Engine) stopCoalescerLocked() {
	c := e.coal.Swap(nil)
	if c == nil {
		return
	}
	close(c.stop)
	<-c.stopped
}

// CoalescingEnabled reports whether request coalescing is on.
func (e *Engine) CoalescingEnabled() bool { return e.coal.Load() != nil }

// do parks one admitted, validated request in the coalescing window and
// waits for its result. The caller still holds its admission-gate slot, so
// the gate bounds parked requests exactly as it bounds direct ones. When the
// queue is full or the coalescer is shutting down, the request is served
// directly instead of blocking (counted as a fallback).
func (c *coalescer) do(ctx context.Context, x []float64) (float64, error) {
	req := &coalReq{ctx: ctx, x: x, out: make(chan coalResult, 1)}
	select {
	case c.reqs <- req:
	default:
		c.e.coalStats.fallbacks.Add(1)
		return c.e.predictSafe(c.e.stats.Load(), x)
	}
	select {
	case r := <-req.out:
		return r.y, r.err
	case <-ctx.Done():
		// Abandon the parked request: the dispatcher either drops it at
		// collect time (context already expired) or computes a result nobody
		// reads (the buffered channel absorbs it). Batchmates are unaffected.
		return 0, ctx.Err()
	case <-c.stopped:
		// Shutdown race: the dispatcher may have served us in its final
		// batch before exiting — prefer that result, otherwise go direct.
		select {
		case r := <-req.out:
			return r.y, r.err
		default:
			c.e.coalStats.fallbacks.Add(1)
			return c.e.predictSafe(c.e.stats.Load(), x)
		}
	}
}

// run is the dispatcher loop: block for the first request, collect
// companions within the window, execute, repeat. On stop it drains whatever
// is queued into one final batch so no parked request is dropped.
func (c *coalescer) run() {
	defer close(c.stopped)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*coalReq, 0, c.maxBatch)
	for {
		select {
		case r := <-c.reqs:
			batch = append(batch, r)
		case <-c.stop:
			for {
				select {
				case r := <-c.reqs:
					batch = append(batch, r)
				default:
					c.dispatch(batch)
					return
				}
			}
		}
		start := time.Now()
		c.collect(&batch, start, timer)
		c.e.coalStats.waits.Record(time.Since(start))
		c.dispatch(batch)
		batch = batch[:0]
	}
}

// collect fills the batch from the queue until it is full, the window
// expires, or the queue stays quiet for a grace interval. The quiet-gap
// cutoff is what keeps the window from idling: when every concurrent caller
// is already in the batch, nobody else can arrive until the batch executes,
// so waiting out the rest of the window would be pure dead time.
func (c *coalescer) collect(batch *[]*coalReq, start time.Time, timer *time.Timer) {
	grace := c.maxWait / 8
	if grace <= 0 {
		grace = time.Microsecond
	}
	deadline := start.Add(c.maxWait)
	for len(*batch) < c.maxBatch {
		select {
		case r := <-c.reqs:
			*batch = append(*batch, r)
			continue
		default:
		}
		if c.maxWait <= 0 {
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return
		}
		wait := grace
		if wait > remain {
			wait = remain
		}
		timer.Reset(wait)
		select {
		case r := <-c.reqs:
			if !timer.Stop() {
				<-timer.C
			}
			*batch = append(*batch, r)
		case <-timer.C:
			return
		case <-c.stop:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}
	}
}

// dispatch executes one collected batch and fans results (or the batch
// error) out to the callers. Requests whose contexts expired while parked
// are dropped with their own ctx error before the batch runs; the batch
// itself executes under the background context so no single caller's
// cancellation can fail its batchmates. Panics are contained by the same
// guard as the direct batch path and fan out as a PanicError.
func (c *coalescer) dispatch(batch []*coalReq) {
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.out <- coalResult{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	c.e.coalStats.batches.Add(1)
	c.e.coalStats.rows.Add(uint64(len(live)))
	c.e.coalStats.sizes.Record(time.Duration(len(live)))
	xs := make([][]float64, len(live))
	for i, r := range live {
		xs[i] = r.x
	}
	ys, err := c.e.predictBatchSafe(context.Background(), c.e.stats.Load(), xs)
	if err != nil {
		for _, r := range live {
			r.out <- coalResult{err: err}
		}
		return
	}
	for i, r := range live {
		r.out <- coalResult{y: ys[i]}
	}
}
