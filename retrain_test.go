package reghd

import (
	"errors"
	"sync"
	"testing"

	"reghd/internal/obs"
)

// TestPipelineFitParallel pins the facade path: FitParallel fits the
// scaler, trains, records the reghd.train aggregate, and the fitted
// pipeline serves with quality comparable to the sequential Fit.
func TestPipelineFitParallel(t *testing.T) {
	obs.Train.Reset()
	d, err := SyntheticDataset("ccpp", 1)
	if err != nil {
		t.Fatal(err)
	}
	d.X, d.Y = d.X[:400], d.Y[:400]
	mk := func() *Pipeline {
		enc, err := NewEncoder(d.Features(), 512, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Epochs = 8
		m, err := NewModel(enc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return NewPipeline(m)
	}
	seq := mk()
	if _, err := seq.Fit(d); err != nil {
		t.Fatal(err)
	}
	par := mk()
	res, err := par.FitParallel(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Scaler() == nil {
		t.Fatal("FitParallel did not fit the scaler")
	}
	seqMSE, err := seq.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	parMSE, err := par.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if parMSE > seqMSE*1.3+1e-3 {
		t.Fatalf("parallel pipeline MSE %.5f vs sequential %.5f", parMSE, seqMSE)
	}
	m := obs.Train.Metrics()
	if m.Runs != 1 || m.Workers != 4 || m.Shards != 4 {
		t.Fatalf("reghd.train not recorded: %+v", m)
	}
	if m.Epochs != uint64(res.Epochs) || m.Rows != res.Rows || m.Merges != uint64(res.Merges) {
		t.Fatalf("reghd.train disagrees with result: %+v vs %+v", m, res)
	}
}

// TestEngineRetrainParallel pins the rebuild path: the engine serves the
// old snapshot throughout the rebuild, switches readers to the retrained
// model at publication, and leaves degraded mode on success.
func TestEngineRetrainParallel(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	beforeSeq := e.Metrics().Robustness.PublishSeq
	// Readers hammer the engine during the whole rebuild.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Predict(d.X[0]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	res, err := e.RetrainParallel(d, 4)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 4 || res.Epochs == 0 {
		t.Fatalf("bad retrain result: %+v", res)
	}
	if e.Snapshot() == before {
		t.Fatal("retrain did not publish a new snapshot")
	}
	if got := e.Metrics().Robustness.PublishSeq; got <= beforeSeq {
		t.Fatalf("publish sequence did not advance: %d -> %d", beforeSeq, got)
	}
	if e.Metrics().Robustness.DegradedMode {
		t.Fatal("successful retrain left the engine degraded")
	}
	// The retrained engine still serves sane predictions in original units.
	ys, err := e.PredictBatch(d.X[:20])
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i, y := range ys {
		diff := y - d.Y[i]
		mse += diff * diff
	}
	mse /= float64(len(ys))
	if mse > 0.5*variance(d.Y[:20]) {
		t.Fatalf("retrained engine predicts poorly: mse %.4f", mse)
	}
	// Invalid input is still rejected up front.
	if _, err := e.RetrainParallel(nil, 2); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

// variance of a target slice, for a scale-aware quality bound.
func variance(ys []float64) float64 {
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var v float64
	for _, y := range ys {
		v += (y - mean) * (y - mean)
	}
	return v / float64(len(ys))
}

// TestEngineRetrainParallelDegradedOnPublishFail pins the failure path: a
// failing republication after the swap leaves the engine degraded and
// serving the last known-good snapshot; a later successful Publish
// recovers.
func TestEngineRetrainParallelDegradedOnPublishFail(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	boom := errors.New("injected publish failure")
	fail := true
	e.setPublishFailpoint(func() error {
		if fail {
			return boom
		}
		return nil
	})
	if _, err := e.RetrainParallel(d, 2); err == nil {
		t.Fatal("failing publish should surface an error")
	}
	if !e.Metrics().Robustness.DegradedMode {
		t.Fatal("failed retrain publish must enter degraded mode")
	}
	if e.Snapshot() != before {
		t.Fatal("degraded engine must keep serving the last good snapshot")
	}
	fail = false
	if err := e.Publish(); err != nil {
		t.Fatal(err)
	}
	if e.Metrics().Robustness.DegradedMode {
		t.Fatal("successful Publish must clear degraded mode")
	}
	if e.Snapshot() == before {
		t.Fatal("recovery publish must publish the retrained model")
	}
}
