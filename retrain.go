package reghd

import (
	"errors"
	"fmt"

	"reghd/internal/core"
	"reghd/internal/dataset"
	"reghd/internal/obs"
)

// ParallelTrainResult extends TrainResult with the sharded-training
// telemetry of FitParallel: shard layout, merge time, and throughput.
type ParallelTrainResult = core.ParallelTrainResult

// Delta is the additive state difference a training worker extracts with
// Model.Delta and a coordinator folds in with Model.Merge/MergeQuantized —
// the bundling-merge primitive behind FitParallel and delta-synced serving
// replicas. See docs/TRAINING.md.
type Delta = core.Delta

// recordTrainRun folds one parallel run into the always-on reghd.train
// aggregate (docs/OBSERVABILITY.md).
func recordTrainRun(r *ParallelTrainResult) {
	obs.Train.Record(obs.TrainRun{
		Workers: r.Workers,
		Shards:  len(r.ShardSizes),
		Epochs:  r.Epochs,
		Merges:  r.Merges,
		MergeNS: r.MergeNS,
		WallNS:  r.WallNS,
		Rows:    r.Rows,
	})
}

// FitParallel is Fit with sharded data parallelism: the standardized
// training set is split into `workers` shards, trained on cloned models
// concurrently, and re-combined each epoch by sample-count-weighted
// bundling (Model.FitParallel; semantics and scaling caveats in
// docs/TRAINING.md). workers == 1 runs exactly the sequential Fit. The run
// is recorded in the always-on reghd.train metrics.
func (p *Pipeline) FitParallel(train *Dataset, workers int) (*ParallelTrainResult, error) {
	sc, err := dataset.FitScaler(train, true)
	if err != nil {
		return nil, err
	}
	trainS, err := sc.Transform(train)
	if err != nil {
		return nil, err
	}
	res, err := p.model.FitParallel(trainS, workers)
	if err != nil {
		return nil, err
	}
	recordTrainRun(res)
	p.scaler = sc
	return res, nil
}

// RetrainParallel rebuilds the engine's model from scratch on train with
// sharded parallel training, then publishes the result through the normal
// snapshot path — the fast full-rebuild primitive for drift recovery: the
// engine keeps serving the current snapshot for the whole rebuild, and
// readers atomically switch to the retrained model at publication.
//
// The training set is standardized through the engine's existing scaler
// (engines built from a fitted Pipeline), so it must be in original units,
// like PartialFit samples; the scaler itself is not refit — retraining
// changes the model, not the feature contract. Streaming PartialFit
// updates that land while the rebuild is running are applied to the old
// model and are therefore lost at the swap; pause writers or replay the
// stream afterwards if that matters.
//
// On success the engine leaves degraded mode (the retrained state is known
// good). If the post-swap republication fails, the engine enters degraded
// mode serving the last pre-retrain snapshot until a Publish succeeds.
func (e *Engine) RetrainParallel(train *Dataset, workers int) (*ParallelTrainResult, error) {
	if train == nil {
		return nil, errors.New("reghd: nil training set")
	}
	if err := train.Validate(); err != nil {
		return nil, err
	}
	// Read the rebuild ingredients under the writer lock, then train
	// entirely off-lock: serving and streaming continue meanwhile.
	e.mu.Lock()
	enc := e.model.Encoder()
	cfg := e.model.Config()
	scaler := e.scaler
	e.mu.Unlock()
	data := train
	if scaler != nil {
		trainS, err := scaler.Transform(train)
		if err != nil {
			return nil, err
		}
		data = trainS
	}
	fresh, err := core.New(enc, cfg)
	if err != nil {
		return nil, err
	}
	res, err := fresh.FitParallel(data, workers)
	if err != nil {
		return nil, err
	}
	recordTrainRun(res)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.model = fresh
	if err := e.republishLocked(); err != nil {
		e.robust.degraded.Store(true)
		return res, fmt.Errorf("reghd: retrain publish failed, serving last good snapshot: %w", err)
	}
	e.robust.degraded.Store(false)
	return res, nil
}
