package reghd

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"reghd/internal/core"
	"reghd/internal/encoding"
	"reghd/internal/hdc"
)

// Kernel-layer benchmarks at the serving shape the paper's deployments use
// (n=32 features, D=4096). Each pair runs the pre-PR dense/per-cluster/
// serial path against the bit-packed/fused/parallel kernel that replaced
// it on the hot path; `make bench-json` records the pairs and their
// speedups in BENCH_kernels.json (see docs/PERFORMANCE.md). The naming
// convention is load-bearing: reghd-benchjson pairs sub-benchmarks by
// swapping dense→packed, naive→packed, naive→fused, serial→parallel.

const (
	benchFeats = 32
	benchDim   = 4096
)

// benchSigns returns a benchFeats×benchDim ±1 projection plus a feature
// vector, the inputs both projection kernels consume.
func benchSigns() (m []float64, x []float64) {
	rng := rand.New(rand.NewSource(21))
	m = make([]float64, benchFeats*benchDim)
	for i := range m {
		if rng.Int63()&1 == 0 {
			m[i] = -1
		} else {
			m[i] = 1
		}
	}
	x = make([]float64, benchFeats)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return m, x
}

// BenchmarkProject isolates the F·B projection: the dense multiply-
// accumulate reference against the bit-packed sign-selected add/sub kernel
// (zero float multiplies, 64× smaller matrix).
func BenchmarkProject(b *testing.B) {
	m, x := benchSigns()
	out := make([]float64, benchDim)
	b.Run("dense-n32-D4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hdc.ProjectDense(nil, out, x, m)
		}
	})
	b.Run("packed-n32-D4096", func(b *testing.B) {
		sm, ok := hdc.PackSignsFlat(m, benchFeats, benchDim)
		if !ok {
			b.Fatal("pack failed")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sm.ProjectAccum(nil, out, x)
		}
	})
}

// benchEncoder builds the n=32, D=4096 nonlinear encoder. ProjBipolar runs
// the packed kernel; ProjGaussian keeps the dense multiply-accumulate loop,
// whose cost is value-independent — so it stands in for what the bipolar
// encoder cost before sign packing.
func benchEncoder(b *testing.B, kind encoding.Projection) *encoding.Nonlinear {
	b.Helper()
	enc, err := encoding.NewNonlinearProjection(rand.New(rand.NewSource(22)), benchFeats, benchDim, 1.0, kind)
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

func benchRow() []float64 {
	rng := rand.New(rand.NewSource(23))
	x := make([]float64, benchFeats)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// BenchmarkEncode measures one full Eq. 1 encoding (projection +
// trigonometric nonlinearity + sign quantization) at n=32, D=4096.
//
// The "naive" lane replicates the pre-kernel-layer algorithm inline — the
// row-sequential dense multiply-accumulate projection followed by a literal
// cos(p+b)·sin(p) per dimension — so the recorded before/after spans the
// actual change, not just whichever pieces stayed in-tree. The "packed"
// lanes run the production encoder (bit-packed quad-table projection,
// product-to-sum single-sin nonlinearity; see docs/PERFORMANCE.md).
func BenchmarkEncode(b *testing.B) {
	x := benchRow()
	b.Run("naive-n32-D4096", func(b *testing.B) {
		m, _ := benchSigns()
		rng := rand.New(rand.NewSource(22))
		bias := make([]float64, benchDim)
		center := make([]float64, benchDim)
		for j := range bias {
			bias[j] = rng.Float64() * 2 * math.Pi
			center[j] = -math.Sin(bias[j]) / 2
		}
		h := make([]float64, benchDim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range h {
				h[j] = 0
			}
			for k, f := range x {
				row := m[k*benchDim : (k+1)*benchDim]
				for j, s := range row {
					h[j] += f * s
				}
			}
			for j, p := range h {
				if math.Cos(p+bias[j])*math.Sin(p) >= center[j] {
					h[j] = 1
				} else {
					h[j] = -1
				}
			}
		}
	})
	b.Run("packed-n32-D4096", func(b *testing.B) {
		enc := benchEncoder(b, encoding.ProjBipolar)
		dst := hdc.NewVector(benchDim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.EncodeBipolarInto(nil, x, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packed-binary-direct-n32-D4096", func(b *testing.B) {
		enc := benchEncoder(b, encoding.ProjBipolar)
		dst := hdc.NewBinary(benchDim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.EncodeBinaryInto(nil, x, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEncodeBatch measures the 256-row batch encode path.
//
// The "serial" lane replicates the pre-fix batch loop inline (the
// BenchmarkEncode "naive" precedent): a fresh D-length allocation per row
// and separate nonlinearize and quantize passes, one row at a time. The
// "parallel" lane runs the fixed EncodeBatchParallel — one contiguous
// output slab, fused nonlinearize+quantize, rows fanned over GOMAXPROCS
// workers — so the recorded speedup spans the whole fix. On a single core
// the fusion alone wins ~1.2×; the worker fan-out adds its multiple only
// with ≥2 cores (see docs/PERFORMANCE.md "Flat spots").
func BenchmarkEncodeBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	xs := make([][]float64, 256)
	for i := range xs {
		row := make([]float64, benchFeats)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		xs[i] = row
	}
	b.Run("serial-256rows-n32-D4096", func(b *testing.B) {
		m, _ := benchSigns()
		sm, ok := hdc.PackSignsFlat(m, benchFeats, benchDim)
		if !ok {
			b.Fatal("pack failed")
		}
		prng := rand.New(rand.NewSource(22))
		bias := make([]float64, benchDim)
		center := make([]float64, benchDim)
		for j := range bias {
			bias[j] = prng.Float64() * 2 * math.Pi
			center[j] = -math.Sin(bias[j]) / 2
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := make([]hdc.Vector, len(xs))
			for r, x := range xs {
				h := make(hdc.Vector, benchDim)
				sm.ProjectAccum(nil, h, x)
				for j, p := range h {
					h[j] = 0.5*math.Sin(2*p+bias[j]) + center[j]
				}
				for j, v := range h {
					if v >= center[j] {
						h[j] = 1
					} else {
						h[j] = -1
					}
				}
				out[r] = h
			}
		}
	})
	b.Run("parallel-256rows-n32-D4096", func(b *testing.B) {
		enc := benchEncoder(b, encoding.ProjBipolar)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := enc.EncodeBatchParallel(nil, xs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimilarityK measures the k-way cluster similarity stage (k=8,
// the paper's default model count): the per-cluster kernel loop against
// the fused kernel that reads the query once for all clusters.
func BenchmarkSimilarityK(b *testing.B) {
	const k = 8
	rng := rand.New(rand.NewSource(25))
	q := hdc.RandomGaussian(rng, benchDim)
	qb := hdc.RandomBipolarBinary(rng, benchDim)
	cs := make([]hdc.Vector, k)
	cbs := make([]*hdc.Binary, k)
	for i := range cs {
		cs[i] = hdc.RandomBipolar(rng, benchDim)
		cbs[i] = hdc.RandomBipolarBinary(rng, benchDim)
	}
	sims := make([]float64, k)
	b.Run("cosine-naive-k8-D4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, c := range cs {
				sims[j] = hdc.Cosine(nil, q, c)
			}
		}
	})
	b.Run("cosine-fused-k8-D4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hdc.CosineK(nil, q, cs, sims)
		}
	})
	b.Run("hamming-naive-k8-D4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, c := range cbs {
				sims[j] = hdc.HammingSimilarity(nil, qb, c)
			}
		}
	})
	b.Run("hamming-fused-k8-D4096", func(b *testing.B) {
		// The contiguous-slab layout snapshots build (core.Model.Snapshot →
		// hdc.NewBinarySet); this is the kernel the serving hot path runs.
		set := hdc.NewBinarySet(cbs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			set.HammingSimilarityK(nil, qb, sims)
		}
	})
}

// BenchmarkEnginePredict serves single predictions through a full engine
// (bipolar projection, k=8, D=4096): the end-to-end number the kernel work
// is ultimately about. Compare with BenchmarkEnginePredictMetricsOn/Off
// for the instrumentation overhead at the smaller D=2000 shape.
func BenchmarkEnginePredict(b *testing.B) {
	e, x := benchKernelEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Predict(x); err != nil {
			b.Fatal(err)
		}
	}
}

// benchKernelEngine builds the k=8, D=4096 serving engine the engine-level
// benchmarks share.
func benchKernelEngine(b *testing.B) (*Engine, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(26))
	train := &Dataset{Name: "bench", X: make([][]float64, 200), Y: make([]float64, 200)}
	for i := range train.X {
		row := make([]float64, benchFeats)
		var y float64
		for j := range row {
			row[j] = rng.NormFloat64()
			y += row[j]
		}
		train.X[i] = row
		train.Y[i] = y
	}
	enc := benchEncoder(b, encoding.ProjBipolar)
	m, err := core.New(enc, core.Config{Models: 8, Epochs: 3, Seed: 27})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(m)
	if err != nil {
		b.Fatal(err)
	}
	return e, train.X[0]
}

// BenchmarkEnginePredictCoalesce drives the engine with 8 concurrent
// single-row callers, direct against the coalescing window — the
// contention shape the coalescer exists for. Per-op time divides the same
// total work either way; the win is per-batch fixed costs (snapshot
// resolution, scratch checkout, per-call bookkeeping) amortized across the
// window, so the coalesced lane's margin grows with cores and with caller
// count. On one core the two lanes sit near parity — the compute itself
// cannot be parallelized away (see docs/PERFORMANCE.md).
func BenchmarkEnginePredictCoalesce(b *testing.B) {
	e, x := benchKernelEngine(b)
	lane := func(coalesce bool) func(*testing.B) {
		return func(b *testing.B) {
			if coalesce {
				e.EnableCoalescing(CoalesceConfig{MaxBatch: 8})
				defer e.DisableCoalescing()
			}
			// 8 caller goroutines regardless of GOMAXPROCS.
			b.SetParallelism((8 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := e.Predict(x); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	b.Run("direct-8callers-n32-D4096", lane(false))
	b.Run("coalesced-8callers-n32-D4096", lane(true))
}
