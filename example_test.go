package reghd_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"reghd"
)

// ExampleNewPipeline trains RegHD end to end on a small nonlinear problem.
func ExampleNewPipeline() {
	rng := rand.New(rand.NewSource(1))
	data := &reghd.Dataset{Name: "demo"}
	for i := 0; i < 600; i++ {
		x := rng.Float64()*4 - 2
		data.X = append(data.X, []float64{x})
		data.Y = append(data.Y, math.Sin(2*x)+0.01*rng.NormFloat64())
	}
	train, test, _ := data.Split(rng, 0.25)

	enc, _ := reghd.NewEncoderBandwidth(1, 2000, 1.0, 42)
	cfg := reghd.DefaultConfig()
	cfg.Models = 1
	model, _ := reghd.NewModel(enc, cfg)
	pipe := reghd.NewPipeline(model)
	if _, err := pipe.Fit(train); err != nil {
		fmt.Println("fit failed:", err)
		return
	}
	mse, _ := pipe.Evaluate(test)
	fmt.Println("learned sin(2x):", mse < 0.05)
	// Output: learned sin(2x): true
}

// ExampleModel_PartialFit learns from a stream one sample at a time.
func ExampleModel_PartialFit() {
	rng := rand.New(rand.NewSource(2))
	enc, _ := reghd.NewEncoder(2, 1000, 7)
	cfg := reghd.DefaultConfig()
	cfg.Models = 1
	model, _ := reghd.NewModel(enc, cfg)

	for i := 0; i < 2000; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		if err := model.PartialFit([]float64{a, b}, 3*a-b); err != nil {
			fmt.Println("update failed:", err)
			return
		}
	}
	y, _ := model.Predict([]float64{1, 0})
	fmt.Println("f(1,0) ≈ 3:", math.Abs(y-3) < 0.5)
	// Output: f(1,0) ≈ 3: true
}

// ExampleModel_Save round-trips a trained model through serialization.
func ExampleModel_Save() {
	rng := rand.New(rand.NewSource(3))
	enc, _ := reghd.NewEncoder(1, 500, 9)
	cfg := reghd.DefaultConfig()
	cfg.Models = 1
	model, _ := reghd.NewModel(enc, cfg)
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64()
		if err := model.PartialFit([]float64{x}, 2*x); err != nil {
			fmt.Println("update failed:", err)
			return
		}
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		fmt.Println("save failed:", err)
		return
	}
	restored, err := reghd.LoadModel(&buf)
	if err != nil {
		fmt.Println("load failed:", err)
		return
	}
	a, _ := model.Predict([]float64{0.5})
	b, _ := restored.Predict([]float64{0.5})
	fmt.Println("identical after restore:", a == b)
	// Output: identical after restore: true
}

// ExampleSyntheticDataset generates a stand-in for a paper dataset.
func ExampleSyntheticDataset() {
	ds, _ := reghd.SyntheticDataset("airfoil", 1)
	fmt.Println(ds.Len(), "samples,", ds.Features(), "features")
	// Output: 1503 samples, 5 features
}
