package reghd

import (
	"fmt"
	"math/rand"
	"testing"

	"reghd/internal/core"
	"reghd/internal/dataset"
)

// Sharded-training benchmark: each `serial_wN` lane runs the sequential
// Fit and its `parallel_wN` counterpart runs FitParallel with N workers on
// the same task, so the pair's speedup IS the parallel scaling at that
// worker count (`make bench-train-json` records the pairs in
// BENCH_train.json). The serial lanes are deliberately identical runs —
// honest repeated baselines, the same convention as the PR 6 coalescing
// pair. The w1 pair is the no-regression gate (`make bench-check` allows
// 0.95x — orchestration overhead must be nil, not negative); the w2/w4
// pairs document scaling and reach near-linear only when GOMAXPROCS ≥
// workers — on a 1-core runner they hover around 1.0x, the honest caveat
// docs/TRAINING.md spells out.

const (
	trainBenchRows  = 512
	trainBenchFeats = 6
	trainBenchDim   = 256
)

// benchTrainFixture returns a pre-standardized training set and a model
// factory; every lane iteration trains a fresh model so no lane benefits
// from a warm start.
func benchTrainFixture(b *testing.B) (*dataset.Dataset, func() *core.Model) {
	b.Helper()
	rng := rand.New(rand.NewSource(31))
	w := make([]float64, trainBenchFeats)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	d := &dataset.Dataset{Name: "bench", X: make([][]float64, trainBenchRows), Y: make([]float64, trainBenchRows)}
	for i := range d.X {
		x := make([]float64, trainBenchFeats)
		y := 0.0
		for j := range x {
			x[j] = rng.NormFloat64()
			y += w[j] * x[j]
		}
		d.X[i] = x
		d.Y[i] = y + 0.05*rng.NormFloat64()
	}
	enc, err := NewEncoder(trainBenchFeats, trainBenchDim, 5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Models = 4
	cfg.Epochs = 3
	cfg.Patience = 100 // fixed work per iteration: never converge early
	cfg.Seed = 9
	return d, func() *core.Model {
		m, err := core.New(enc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
}

// BenchmarkFitParallel pairs sequential Fit against FitParallel at 1, 2,
// and 4 workers (n=512 rows, D=256, k=4, 3 epochs).
func BenchmarkFitParallel(b *testing.B) {
	d, mk := benchTrainFixture(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("serial_w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mk().Fit(d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel_w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mk().FitParallel(d, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
