# RegHD — common workflows. Pure Go; no external dependencies.

GO ?= go

.PHONY: all build vet test race race-quick cover bench bench-quick bench-json bench-train-json bench-check experiments fuzz fuzz-smoke chaos fleet-smoke replica-smoke train-smoke examples serve-demo lint lint-sarif metrics-lint bench-metrics clean

# Tier-1 flow: build, vet, tests, the full race-detector pass, and the
# static-analysis suite, so the concurrency contracts (Snapshot serving,
# pooled Predict scratch) and the op-accounting contract can never regress
# silently.
all: build vet test race lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race pass over just the concurrency-bearing packages (fast iteration).
race-quick:
	$(GO) test -race ./internal/core/ ./internal/encoding/ ./internal/hdc/ ./internal/obs/ .

cover:
	$(GO) test -cover ./...

# The full testing.B harness (one benchmark per paper table/figure plus
# kernel micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Only the kernel micro-benchmarks (fast).
bench-quick:
	$(GO) test -bench='Encode|Hamming|Cosine|DotBinary|Predict' -benchmem .

# Kernel before/after record: runs the paired kernel benchmarks
# (bench_kernels_test.go) and writes BENCH_kernels.json with ns/op plus
# baseline→optimized speedups. See docs/PERFORMANCE.md.
bench-json:
	$(GO) test -run xxx -bench 'Project$$|Encode$$|EncodeBatch$$|SimilarityK$$|EnginePredict$$|EnginePredictCoalesce$$' -benchtime=1s -count=3 . \
		| $(GO) run ./cmd/reghd-benchjson -o BENCH_kernels.json

# Sharded-training before/after record: runs the FitParallel serial-vs-N
# worker pairs (bench_train_test.go) and writes BENCH_train.json. The w2/w4
# speedups only exceed 1.0x when GOMAXPROCS >= workers; the context block
# records gomaxprocs so the JSON is honest about the cores it had. See
# docs/TRAINING.md.
bench-train-json:
	$(GO) test -run xxx -bench 'FitParallel$$' -benchtime=2x -count=3 . \
		| $(GO) run ./cmd/reghd-benchjson -tolerance 0.95 -o BENCH_train.json

# Regression gate: rerun the two kernel pairs this repo once shipped slow
# (batch encode, k-way Hamming) and fail if any optimized lane measures
# slower than its baseline, plus the 1-worker FitParallel parity pair at a
# 0.95 tolerance (orchestration overhead must stay within noise; multi-
# worker pairs are excluded because on a 1-core runner they sit at parity
# by design — see docs/TRAINING.md). Short benchtime — this is a smoke
# gate, not the record; the coalescing pair is excluded because on few-core
# machines it sits at parity by design (see docs/PERFORMANCE.md) and would
# flake.
bench-check:
	$(GO) test -run xxx -bench 'EncodeBatch$$|SimilarityK$$' -benchtime=0.3s -count=2 . \
		| $(GO) run ./cmd/reghd-benchjson -fail-on-regression -o -
	$(GO) test -run xxx -bench 'FitParallel/.*_w1$$' -benchtime=2x -count=3 . \
		| $(GO) run ./cmd/reghd-benchjson -fail-on-regression -tolerance 0.95 -o -

# Metrics-off vs metrics-on serving throughput (the < 5% overhead check).
bench-metrics:
	$(GO) test -run xxx -bench 'EnginePredictMetrics' -count=5 .

# Observability demo server: trains on a synthetic dataset, generates
# reader/writer traffic, and exposes /metrics + /debug/pprof/.
# See docs/OBSERVABILITY.md for a guided session against it.
serve-demo:
	$(GO) run ./cmd/reghd-serve

# The in-tree static-analysis suite (cmd/reghd-lint): nine go/ast+go/types
# analyzers enforcing Snapshot immutability, pooled-scratch hygiene, kernel
# op-accounting, atomic-access discipline, the float-equality ban,
# merge/serialize determinism, request-path context propagation, goroutine
# shutdown ties, and error-handling discipline. Lints every package,
# including the lint package and command themselves, then audits the
# suppression directives so a //lint:ignore that no longer suppresses
# anything fails the build. See docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/reghd-lint ./...
	$(GO) run ./cmd/reghd-lint -audit-ignores ./...

# SARIF 2.1.0 log for GitHub code scanning (the CI lint-sarif job uploads
# this; findings become PR annotations instead of log lines).
lint-sarif:
	$(GO) run ./cmd/reghd-lint -format sarif ./... > reghd-lint.sarif

# Check docs/OBSERVABILITY.md and the exported metric structs against each
# other: every metric in code must be documented, and vice versa.
metrics-lint:
	$(GO) test -run TestMetricsDocumented -count=1 ./internal/obs/

# Regenerate every paper table and figure.
experiments:
	$(GO) run ./cmd/reghd-bench -exp all

fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=10s ./internal/dataset/
	$(GO) test -fuzz=FuzzPackUnpack -fuzztime=10s ./internal/hdc/

# Quick CI-friendly fuzz pass over the differential sign-projection target:
# the bit-packed encode path must keep agreeing with the reference form.
fuzz-smoke:
	$(GO) test -fuzz=FuzzSignProject -fuzztime=20s ./internal/hdc/

# Fault-injection chaos pass (docs/ROBUSTNESS.md): the serving-hardening
# stress tests under the race detector — readers hammering an engine whose
# writer fails mid-stream, panics from poisoned state, admission shedding —
# plus the fault-injector suite and a short fuzz of the bit-flip
# self-inverse contract the transient fault mode depends on.
chaos:
	$(GO) test -race -count=1 -run 'TestEngineChaos|TestEnginePanicContainment|TestEngineDegradedMode|TestEngineAdmissionGate|TestEngineMetricsErrors' .
	$(GO) test -race -count=1 ./internal/fault/
	$(GO) test -fuzz=FuzzBitFlip -fuzztime=15s ./internal/fault/

# End-to-end multi-tenant serving smoke (docs/SERVING.md): seed an
# 8-tenant fleet, serve it on an ephemeral port with a resident budget of
# 4, drive a 5s zipfian reghd-loadgen mix under a generous SLO, and fail
# on SLO violation, any request error, or zero observed LRU evictions.
fleet-smoke:
	sh ./scripts/fleet_smoke.sh

# Replicated-serving smoke (docs/REPLICATION.md): three reghd-replica
# processes exchanging deltas over HTTP through seeded chaos (10% drop
# plus a 2s partition window on one replica), asserting every replica
# folds all rounds with a Float64bits-identical state fingerprint.
replica-smoke:
	sh ./scripts/replica_smoke.sh

# Sharded-training quality smoke (docs/TRAINING.md): train reghd-train on
# the synthetic airfoil task sequentially and with 4 workers, and fail if
# the parallel test MSE drifts beyond tolerance of the sequential run —
# the end-to-end guard on the bundling-merge math.
train-smoke:
	sh ./scripts/train_scale_smoke.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/powerplant
	$(GO) run ./examples/edge
	$(GO) run ./examples/robustness
	$(GO) run ./examples/streaming
	$(GO) run ./examples/serving
	$(GO) run ./examples/forecast
	$(GO) run ./examples/classify
	$(GO) run ./examples/rlcontrol

clean:
	$(GO) clean ./...
