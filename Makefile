# RegHD — common workflows. Pure Go; no external dependencies.

GO ?= go

.PHONY: all build vet test race race-quick cover bench bench-quick experiments fuzz examples clean

# Tier-1 flow: build, vet, tests, and the full race-detector pass, so the
# concurrency contracts (Snapshot serving, pooled Predict scratch) can never
# regress silently.
all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race pass over just the concurrency-bearing packages (fast iteration).
race-quick:
	$(GO) test -race ./internal/core/ ./internal/hdc/ .

cover:
	$(GO) test -cover ./...

# The full testing.B harness (one benchmark per paper table/figure plus
# kernel micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Only the kernel micro-benchmarks (fast).
bench-quick:
	$(GO) test -bench='Encode|Hamming|Cosine|DotBinary|Predict' -benchmem .

# Regenerate every paper table and figure.
experiments:
	$(GO) run ./cmd/reghd-bench -exp all

fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=10s ./internal/dataset/
	$(GO) test -fuzz=FuzzPackUnpack -fuzztime=10s ./internal/hdc/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/powerplant
	$(GO) run ./examples/edge
	$(GO) run ./examples/robustness
	$(GO) run ./examples/streaming
	$(GO) run ./examples/serving
	$(GO) run ./examples/forecast
	$(GO) run ./examples/classify
	$(GO) run ./examples/rlcontrol

clean:
	$(GO) clean ./...
