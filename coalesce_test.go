package reghd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// TestCoalesceBitIdenticalToDirect: concurrent single-row predictions
// through the coalescing window must reproduce the direct path bit for bit —
// every row runs the same snapshot Predict kernel, coalescing only changes
// who drives it. Run with -race this doubles as the dispatcher's data-race
// stress.
func TestCoalesceBitIdenticalToDirect(t *testing.T) {
	e, d := hardenFixture(t)
	e.SetPublishEvery(0) // freeze the snapshot so direct/coalesced compare bitwise
	rows := d.X[:8]
	want := make([]float64, len(rows))
	for i, x := range rows {
		y, err := e.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = y
	}

	e.EnableMetrics()
	e.EnableCoalescing(CoalesceConfig{MaxBatch: 8})
	defer e.DisableCoalescing()
	if !e.CoalescingEnabled() {
		t.Fatal("coalescing did not enable")
	}

	const goroutines, iters = 16, 50
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(rows)
				y, err := e.Predict(rows[i])
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(y) != math.Float64bits(want[i]) {
					errs <- fmt.Errorf("row %d: coalesced %v != direct %v", i, y, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := e.Metrics().Coalesce
	if m.Rows+m.Fallbacks < goroutines*iters {
		t.Fatalf("coalesce accounting lost rows: rows %d + fallbacks %d < %d", m.Rows, m.Fallbacks, goroutines*iters)
	}
	if m.Rows > 0 && m.Batches == 0 {
		t.Fatal("rows recorded without batches")
	}
	if m.BatchSizeMax > 8 {
		t.Fatalf("batch size %d exceeded MaxBatch 8", m.BatchSizeMax)
	}
}

// TestCoalesceCancellationIsolation: a caller whose context expires while
// parked gets its own ctx error, and its batchmates are served normally —
// the batch executes under the background context, not any caller's.
func TestCoalesceCancellationIsolation(t *testing.T) {
	e, d := hardenFixture(t)
	e.SetPublishEvery(0)
	want, err := e.Predict(d.X[1])
	if err != nil {
		t.Fatal(err)
	}
	// A long window whose quiet-gap (MaxWait/8 = 25ms) dwarfs the 2ms
	// cancellation below, so the cancelled caller reliably expires while
	// parked in the open window.
	e.EnableCoalescing(CoalesceConfig{MaxBatch: 8, MaxWait: 200 * time.Millisecond})
	defer e.DisableCoalescing()

	ctx, cancel := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := e.PredictCtx(ctx, d.X[0])
		aErr <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-aErr; !errors.Is(err, context.Canceled) {
		// The dispatcher may occasionally win the race and serve the row
		// before cancellation lands; that is a valid outcome too.
		if err != nil {
			t.Fatalf("cancelled caller: err = %v, want context.Canceled or success", err)
		}
	}
	// The batchmate (and the engine generally) is unaffected.
	y, err := e.Predict(d.X[1])
	if err != nil {
		t.Fatalf("batchmate failed after sibling cancellation: %v", err)
	}
	if math.Float64bits(y) != math.Float64bits(want) {
		t.Fatalf("batchmate result moved: %v != %v", y, want)
	}
}

// TestCoalesceAdmissionGate: parked requests hold their admission slots, so
// SetMaxInFlight bounds coalesced traffic exactly as it bounds direct
// traffic, and shed requests still fail fast with ErrOverloaded.
func TestCoalesceAdmissionGate(t *testing.T) {
	e, d := hardenFixture(t)
	e.SetPublishEvery(0)
	e.EnableCoalescing(CoalesceConfig{MaxBatch: 4})
	defer e.DisableCoalescing()
	e.SetMaxInFlight(1)
	if !e.acquire() {
		t.Fatal("gate rejected the first request")
	}
	if _, err := e.Predict(d.X[0]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full gate: err = %v, want ErrOverloaded", err)
	}
	e.release()
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatalf("freed gate: %v", err)
	}
	e.SetMaxInFlight(0)
}

// TestCoalesceDegradedMode: a degraded engine keeps serving coalesced
// predictions from its last known-good snapshot, bit-identical to before the
// failure — PR 5's degradation semantics hold through the coalescer.
func TestCoalesceDegradedMode(t *testing.T) {
	e, d := hardenFixture(t)
	e.SetPublishEvery(1)
	e.EnableCoalescing(CoalesceConfig{MaxBatch: 4})
	defer e.DisableCoalescing()
	want, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("publish failpoint")
	e.setPublishFailpoint(func() error { return boom })
	if err := e.PartialFit(d.X[1], d.Y[1]); err == nil {
		t.Fatal("PartialFit under failpoint should surface the republish failure")
	}
	if !e.Degraded() {
		t.Fatal("engine did not enter degraded mode")
	}
	y, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatalf("degraded coalesced predict: %v", err)
	}
	if math.Float64bits(y) != math.Float64bits(want) {
		t.Fatalf("degraded mode served a different snapshot: %v != %v", y, want)
	}
	e.setPublishFailpoint(nil)
	if err := e.Publish(); err != nil {
		t.Fatal(err)
	}
	if e.Degraded() {
		t.Fatal("publish did not clear degraded mode")
	}
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatalf("recovered predict: %v", err)
	}
}

// TestCoalesceDisableDrains: disabling mid-traffic loses no parked request —
// every in-flight caller gets a result or a clean error — and the engine
// serves directly afterwards; re-enabling works.
func TestCoalesceDisableDrains(t *testing.T) {
	e, d := hardenFixture(t)
	e.SetPublishEvery(0)
	rows := d.X[:4]
	want := make([]float64, len(rows))
	for i, x := range rows {
		y, err := e.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = y
	}
	for cycle := 0; cycle < 3; cycle++ {
		e.EnableCoalescing(CoalesceConfig{MaxBatch: 4, MaxWait: time.Millisecond})
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for it := 0; it < 20; it++ {
					i := (g + it) % len(rows)
					y, err := e.Predict(rows[i])
					if err != nil {
						errs <- err
						return
					}
					if math.Float64bits(y) != math.Float64bits(want[i]) {
						errs <- fmt.Errorf("cycle %d row %d: %v != %v", cycle, i, y, want[i])
						return
					}
				}
			}(g)
		}
		time.Sleep(time.Millisecond)
		e.DisableCoalescing()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if e.CoalescingEnabled() {
			t.Fatal("coalescing still enabled after disable")
		}
	}
	y, err := e.Predict(rows[0])
	if err != nil || math.Float64bits(y) != math.Float64bits(want[0]) {
		t.Fatalf("direct predict after cycles: %v, %v", y, err)
	}
}

// TestCoalesceValidationAndMetricsSurface: invalid inputs are rejected
// before parking (per-caller validation), and the metrics struct carries the
// coalesce block regardless of EnableMetrics.
func TestCoalesceValidationAndMetricsSurface(t *testing.T) {
	e, d := hardenFixture(t)
	m := e.Metrics().Coalesce
	if m.Enabled || m.Batches != 0 {
		t.Fatalf("zero engine reports coalesce activity: %+v", m)
	}
	e.EnableCoalescing(CoalesceConfig{})
	defer e.DisableCoalescing()
	if _, err := e.Predict([]float64{math.NaN()}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("invalid input: err = %v, want ErrInvalidInput", err)
	}
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics().Coalesce
	if !m.Enabled {
		t.Fatal("metrics do not report coalescing enabled")
	}
	if m.Rows+m.Fallbacks < 1 {
		t.Fatalf("served row not accounted: %+v", m)
	}
}
