package reghd

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// fitServeFixture returns a fitted pipeline plus held-out rows in original
// units.
func fitServeFixture(t *testing.T) (*Pipeline, *Dataset) {
	t.Helper()
	d, err := SyntheticDataset("ccpp", 1)
	if err != nil {
		t.Fatal(err)
	}
	d.X = d.X[:400]
	d.Y = d.Y[:400]
	enc, err := NewEncoder(d.Features(), 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 8
	m, err := NewModel(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(m)
	if _, err := p.Fit(d); err != nil {
		t.Fatal(err)
	}
	return p, d
}

func TestEngineRequiresTrainedModel(t *testing.T) {
	enc, err := NewEncoder(3, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(enc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(m); err != ErrNotTrained {
		t.Fatalf("expected ErrNotTrained, got %v", err)
	}
	if _, err := NewPipelineEngine(NewPipeline(m)); err == nil {
		t.Fatal("unfitted pipeline accepted")
	}
}

func TestPipelineEngineMatchesPipeline(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.PredictBatch(d.X[:50])
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.PredictBatch(d.X[:50])
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("engine row %d = %v, pipeline = %v", i, got[i], want[i])
		}
	}
	y1, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if y1 != want[0] {
		t.Fatalf("engine Predict = %v, pipeline = %v", y1, want[0])
	}
}

// TestEngineServeWhileTraining is the facade-level stress test: concurrent
// readers hit Engine.Predict while a writer streams PartialFit updates with
// automatic republication. Readers must always observe finite predictions,
// and any snapshot they pin must stay deterministic.
func TestEngineServeWhileTraining(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPublishEvery(25)

	pinned := e.Snapshot()
	row := append([]float64(nil), d.X[0]...)
	if err := p.Scaler().TransformRow(row); err != nil {
		t.Fatal(err)
	}
	frozen, err := pinned.Predict(row)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := SyntheticDataset("ccpp", 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if err := e.PartialFit(stream.X[i], stream.Y[i]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const readers = 6
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < 100; r++ {
				y, err := e.Predict(d.X[rng.Intn(len(d.X))])
				if err != nil {
					t.Error(err)
					return
				}
				if math.IsNaN(y) || math.IsInf(y, 0) {
					t.Errorf("engine prediction not finite: %v", y)
					return
				}
				if yf, err := pinned.Predict(row); err != nil || yf != frozen {
					t.Errorf("pinned snapshot drifted: %v (err %v) != %v", yf, err, frozen)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The writer's 300 updates crossed the publish interval many times, so
	// the engine must now serve a newer snapshot than the pinned one.
	if e.Snapshot() == pinned {
		t.Fatal("engine never republished during the PartialFit stream")
	}
}

func TestEnginePublishAndUpdate(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	if err := e.Publish(); err != nil {
		t.Fatal(err)
	}
	if e.Snapshot() == before {
		t.Fatal("Publish did not swap the snapshot")
	}
	prev, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(m *Model) error {
		return m.Sparsify(0.9)
	}); err != nil {
		t.Fatal(err)
	}
	after, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if after == prev {
		t.Fatal("Update's mutation not visible after republication")
	}
}

func TestEngineOpCounting(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	ctr := e.EnableOpCounting()
	if _, err := e.PredictBatch(d.X[:32]); err != nil {
		t.Fatal(err)
	}
	if ctr.Total() == 0 {
		t.Fatal("op counter saw no operations")
	}
	n := ctr.Total()
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatal(err)
	}
	if ctr.Total() <= n {
		t.Fatal("op counter did not advance on Predict")
	}
}

func TestPipelinePredictBatchUnfitted(t *testing.T) {
	enc, err := NewEncoder(3, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(enc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipeline(m).PredictBatch([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("unfitted pipeline PredictBatch accepted")
	}
}
