package reghd

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fitServeFixture returns a fitted pipeline plus held-out rows in original
// units.
func fitServeFixture(t *testing.T) (*Pipeline, *Dataset) {
	t.Helper()
	d, err := SyntheticDataset("ccpp", 1)
	if err != nil {
		t.Fatal(err)
	}
	d.X = d.X[:400]
	d.Y = d.Y[:400]
	enc, err := NewEncoder(d.Features(), 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 8
	m, err := NewModel(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(m)
	if _, err := p.Fit(d); err != nil {
		t.Fatal(err)
	}
	return p, d
}

func TestEngineRequiresTrainedModel(t *testing.T) {
	enc, err := NewEncoder(3, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(enc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(m); err != ErrNotTrained {
		t.Fatalf("expected ErrNotTrained, got %v", err)
	}
	if _, err := NewPipelineEngine(NewPipeline(m)); err == nil {
		t.Fatal("unfitted pipeline accepted")
	}
}

func TestPipelineEngineMatchesPipeline(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.PredictBatch(d.X[:50])
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.PredictBatch(d.X[:50])
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("engine row %d = %v, pipeline = %v", i, got[i], want[i])
		}
	}
	y1, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if y1 != want[0] {
		t.Fatalf("engine Predict = %v, pipeline = %v", y1, want[0])
	}
}

// TestEngineServeWhileTraining is the facade-level stress test: concurrent
// readers hit Engine.Predict while a writer streams PartialFit updates with
// automatic republication. Readers must always observe finite predictions,
// and any snapshot they pin must stay deterministic.
func TestEngineServeWhileTraining(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPublishEvery(25)

	pinned := e.Snapshot()
	row := append([]float64(nil), d.X[0]...)
	if err := p.Scaler().TransformRow(row); err != nil {
		t.Fatal(err)
	}
	frozen, err := pinned.Predict(row)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := SyntheticDataset("ccpp", 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if err := e.PartialFit(stream.X[i], stream.Y[i]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const readers = 6
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < 100; r++ {
				y, err := e.Predict(d.X[rng.Intn(len(d.X))])
				if err != nil {
					t.Error(err)
					return
				}
				if math.IsNaN(y) || math.IsInf(y, 0) {
					t.Errorf("engine prediction not finite: %v", y)
					return
				}
				if yf, err := pinned.Predict(row); err != nil || yf != frozen {
					t.Errorf("pinned snapshot drifted: %v (err %v) != %v", yf, err, frozen)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The writer's 300 updates crossed the publish interval many times, so
	// the engine must now serve a newer snapshot than the pinned one.
	if e.Snapshot() == pinned {
		t.Fatal("engine never republished during the PartialFit stream")
	}
}

func TestEnginePublishAndUpdate(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	if err := e.Publish(); err != nil {
		t.Fatal(err)
	}
	if e.Snapshot() == before {
		t.Fatal("Publish did not swap the snapshot")
	}
	prev, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(m *Model) error {
		return m.Sparsify(0.9)
	}); err != nil {
		t.Fatal(err)
	}
	after, err := e.Predict(d.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if after == prev {
		t.Fatal("Update's mutation not visible after republication")
	}
}

func TestEngineOpCounting(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	ctr := e.EnableOpCounting()
	if _, err := e.PredictBatch(d.X[:32]); err != nil {
		t.Fatal(err)
	}
	if ctr.Total() == 0 {
		t.Fatal("op counter saw no operations")
	}
	n := ctr.Total()
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatal(err)
	}
	if ctr.Total() <= n {
		t.Fatal("op counter did not advance on Predict")
	}
}

func TestEngineMetricsDisabled(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	if e.MetricsEnabled() {
		t.Fatal("metrics enabled before EnableMetrics")
	}
	if _, err := e.Predict(d.X[0]); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Enabled || m.Predict.Count != 0 || m.Snapshot.Publishes != 0 {
		t.Fatalf("disabled metrics not zero: %+v", m)
	}
}

// TestEngineMetricsUnderLoad is the observability version of the serving
// race-stress test: concurrent readers and a PartialFit writer run with
// metrics enabled, and every acceptance metric — latency quantiles,
// throughput, stage timing, snapshot staleness — must come out non-zero
// and internally consistent.
func TestEngineMetricsUnderLoad(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPublishEvery(25)
	e.EnableMetrics()
	e.EnableMetrics() // idempotent

	stream, err := SyntheticDataset("ccpp", 2)
	if err != nil {
		t.Fatal(err)
	}
	const updates = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			if err := e.PartialFit(stream.X[i], stream.Y[i]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	const readers, perReader = 6, 100
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < perReader; r++ {
				if _, err := e.Predict(d.X[rng.Intn(len(d.X))]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := e.PredictBatch(d.X[:40]); err != nil {
		t.Fatal(err)
	}

	m := e.Metrics()
	if !m.Enabled {
		t.Fatal("metrics not enabled")
	}
	if m.Predict.Count != readers*perReader || m.Predict.Errors != 0 {
		t.Fatalf("predict count/errors = %d/%d, want %d/0", m.Predict.Count, m.Predict.Errors, readers*perReader)
	}
	if m.Predict.P50NS <= 0 || m.Predict.P99NS < m.Predict.P50NS || m.Predict.MaxNS < m.Predict.P99NS {
		t.Fatalf("latency quantiles inconsistent: %+v", m.Predict)
	}
	if m.Predict.RatePerSec <= 0 {
		t.Fatalf("throughput not positive: %v", m.Predict.RatePerSec)
	}
	if m.PartialFit.Count != updates || m.PartialFit.P50NS <= 0 {
		t.Fatalf("partial_fit digest wrong: %+v", m.PartialFit)
	}
	if m.PredictBatch.Count != 1 || m.PredictBatchRows != 40 {
		t.Fatalf("batch digest wrong: %+v rows %d", m.PredictBatch, m.PredictBatchRows)
	}
	// Stage accounting: every served prediction passes standardize and
	// encode; multi-model configs also search and read out.
	wantStaged := int64(readers*perReader + 40)
	if m.Stages.Encode.Calls != wantStaged || m.Stages.Readout.Calls != wantStaged {
		t.Fatalf("stage calls = %+v, want %d encodes", m.Stages, wantStaged)
	}
	if m.Stages.Standardize.Calls != readers*perReader+1 { // one per call, batch counts once
		t.Fatalf("standardize calls = %d", m.Stages.Standardize.Calls)
	}
	if m.Stages.Encode.TotalNS <= 0 || m.Stages.Encode.MeanNS <= 0 {
		t.Fatalf("encode stage not timed: %+v", m.Stages.Encode)
	}
	// The writer crossed the publish interval repeatedly.
	if m.Snapshot.Publishes < 2 {
		t.Fatalf("publishes = %d, want several", m.Snapshot.Publishes)
	}
	if m.Snapshot.AgeSeconds < 0 || m.UptimeSeconds <= 0 {
		t.Fatalf("gauges inconsistent: %+v", m.Snapshot)
	}
}

// TestEngineSnapshotStaleness pins the staleness gauges' semantics: updates
// accumulate the publish lag, Publish resets both the lag and the age.
func TestEngineSnapshotStaleness(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPublishEvery(0) // manual publication only
	e.EnableMetrics()
	for i := 0; i < 5; i++ {
		if err := e.PartialFit(d.X[i], d.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	m := e.Metrics()
	if m.Snapshot.UpdatesSincePublish != 5 {
		t.Fatalf("updates_since_publish = %d, want 5", m.Snapshot.UpdatesSincePublish)
	}
	if m.Snapshot.AgeSeconds < 0.02 {
		t.Fatalf("age_s = %v, want ≥ 20ms", m.Snapshot.AgeSeconds)
	}
	publishes := m.Snapshot.Publishes
	if err := e.Publish(); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.Snapshot.UpdatesSincePublish != 0 {
		t.Fatalf("publish did not reset lag: %d", m.Snapshot.UpdatesSincePublish)
	}
	if m.Snapshot.Publishes != publishes+1 {
		t.Fatalf("publishes = %d, want %d", m.Snapshot.Publishes, publishes+1)
	}
	if m.Snapshot.AgeSeconds > 0.02 {
		t.Fatalf("age_s = %v after publish, want fresh", m.Snapshot.AgeSeconds)
	}
	// PartialFit-triggered auto-publication resets the gauge too.
	e.SetPublishEvery(3)
	for i := 0; i < 3; i++ {
		if err := e.PartialFit(d.X[i], d.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if m = e.Metrics(); m.Snapshot.UpdatesSincePublish != 0 {
		t.Fatalf("auto-publish did not reset lag: %d", m.Snapshot.UpdatesSincePublish)
	}
}

// TestEngineMetricsErrors: validation rejections land in the invalid-input
// counter without polluting the latency digest, while failures inside the
// serving path (here a panic from poisoned model state) are digested as
// errors.
func TestEngineMetricsErrors(t *testing.T) {
	p, d := fitServeFixture(t)
	e, err := NewPipelineEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableMetrics()
	if _, err := e.Predict([]float64{1}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("short feature vector: err = %v, want ErrInvalidInput", err)
	}
	m := e.Metrics()
	if m.Robustness.InvalidInputs != 1 {
		t.Fatalf("invalid_inputs = %d, want 1", m.Robustness.InvalidInputs)
	}
	if m.Predict.Errors != 0 || m.Predict.Count != 0 {
		t.Fatalf("rejected request reached the digest: errors/count = %d/%d", m.Predict.Errors, m.Predict.Count)
	}
	// Poison the published state: truncating a model hypervector makes the
	// readout dot panic, which the engine must contain per-request.
	if err := e.Update(func(m *Model) error {
		fv := m.FaultView()
		fv.Models[0] = fv.Models[0][:8]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if _, err := e.Predict(d.X[0]); !errors.As(err, &pe) {
		t.Fatalf("poisoned predict: err = %v, want PanicError", err)
	}
	if m = e.Metrics(); m.Predict.Errors != 1 || m.Predict.Count != 1 {
		t.Fatalf("errors/count = %d/%d, want 1/1", m.Predict.Errors, m.Predict.Count)
	}
	if m.Robustness.PanicsRecovered != 1 {
		t.Fatalf("panics_recovered = %d, want 1", m.Robustness.PanicsRecovered)
	}
}

func TestPipelineStageTiming(t *testing.T) {
	p, d := fitServeFixture(t)
	st := p.EnableStageTiming()
	if st != p.EnableStageTiming() || st != p.StageTimes() {
		t.Fatal("EnableStageTiming not idempotent")
	}
	if _, err := p.Predict(d.X[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictBatch(d.X[:8]); err != nil {
		t.Fatal(err)
	}
	s := st.Summary()
	if s.Standardize.Calls != 2 { // one Predict + one batch observation
		t.Fatalf("standardize calls = %d, want 2", s.Standardize.Calls)
	}
	if s.Encode.Calls != 9 || s.Similarity.Calls != 9 || s.Readout.Calls != 9 {
		t.Fatalf("stage calls = %+v, want 9 each", s)
	}
	if s.Encode.TotalNS <= 0 {
		t.Fatalf("encode not timed: %+v", s.Encode)
	}
}

func TestPipelinePredictBatchUnfitted(t *testing.T) {
	enc, err := NewEncoder(3, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(enc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipeline(m).PredictBatch([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("unfitted pipeline PredictBatch accepted")
	}
}
