package reghd

import "reghd/internal/hwmodel"

// HardwareProfile describes an embedded target for the analytical cost
// model (per-op energy, issue widths, clock, static power).
type HardwareProfile = hwmodel.Profile

// HardwareCost is an estimated runtime and energy.
type HardwareCost = hwmodel.Cost

// RegHDWorkload describes a RegHD run for cost estimation.
type RegHDWorkload = hwmodel.RegHDWorkload

// FPGAProfile returns the Kintex-7-class hardware profile used by the
// efficiency experiments.
func FPGAProfile() HardwareProfile { return hwmodel.FPGA() }

// ARMProfile returns the Raspberry-Pi-class (Cortex-A53) profile.
func ARMProfile() HardwareProfile { return hwmodel.ARM() }

// EstimateCost converts recorded operation counts into runtime and energy
// on a hardware profile.
func EstimateCost(c *OpCounter, p HardwareProfile) (HardwareCost, error) {
	return hwmodel.EstimateCounter(c, p)
}

// EstimateCostAtomic is EstimateCost over a concurrent-serving counter
// (Engine.EnableOpCounting / Snapshot.SetCounter): it prices the operations
// of the traffic served so far, and may be called while serving continues.
// cmd/reghd-serve publishes the same estimate continuously at /metrics.
func EstimateCostAtomic(c *AtomicOpCounter, p HardwareProfile) (HardwareCost, error) {
	return hwmodel.Estimate(c.Snapshot(), p)
}
